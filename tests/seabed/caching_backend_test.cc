// CachingSeabedBackend mechanics: hit/miss accounting, fingerprint
// normalization end-to-end, LRU + byte-budget eviction, append/attach
// invalidation (fact and join right side), and the translated-plan cache.
// Row-level correctness across backends is pinned by the fuzz equivalence
// suite; this file tests the cache machinery itself.
#include "src/seabed/caching_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/seabed/session.h"

namespace seabed {
namespace {

std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

SessionOptions TestOptions(BackendKind backend) {
  SessionOptions options;
  options.backend = backend;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.planner.expected_rows = 800;
  options.key_seed = 4321;
  return options;
}

std::shared_ptr<Table> MakeFactTable(size_t rows, uint64_t seed) {
  auto table = std::make_shared<Table>("sales");
  auto region = std::make_shared<StringColumn>();
  auto store = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto amount = std::make_shared<Int64Column>();
  auto fk = std::make_shared<Int64Column>();
  Rng rng(seed);
  const char* regions[] = {"na", "eu", "apac"};
  const char* stores[] = {"s1", "s2", "s3", "s4"};
  for (size_t i = 0; i < rows; ++i) {
    region->Append(regions[rng.Below(3)]);
    store->Append(stores[rng.Below(4)]);
    ts->Append(static_cast<int64_t>(rng.Below(100)));
    amount->Append(rng.Range(-100, 1000));
    fk->Append(static_cast<int64_t>(rng.Below(10)));
  }
  table->AddColumn("region", region);
  table->AddColumn("store", store);
  table->AddColumn("ts", ts);
  table->AddColumn("amount", amount);
  table->AddColumn("fk", fk);
  return table;
}

PlainSchema FactSchema() {
  PlainSchema schema;
  schema.table_name = "sales";
  ValueDistribution regions;
  regions.values = {"na", "eu", "apac"};
  regions.frequencies = {0.34, 0.33, 0.33};
  schema.columns.push_back({"region", ColumnType::kString, true, regions});
  schema.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"amount", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"fk", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::shared_ptr<Table> MakeDimTable(uint64_t seed) {
  auto table = std::make_shared<Table>("dim");
  auto key = std::make_shared<Int64Column>();
  auto weight = std::make_shared<Int64Column>();
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    key->Append(static_cast<int64_t>(rng.Below(10)));
    weight->Append(rng.Range(1, 50));
  }
  table->AddColumn("key", key);
  table->AddColumn("weight", weight);
  return table;
}

PlainSchema DimSchema() {
  PlainSchema schema;
  schema.table_name = "dim";
  schema.columns.push_back({"key", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"weight", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::vector<Query> SampleQueries() {
  std::vector<Query> samples;
  {
    Query q;
    q.table = "sales";
    q.Sum("amount").Count().Avg("amount");
    q.Where("region", CmpOp::kEq, std::string("na"));
    q.GroupBy("store");
    samples.push_back(q);
  }
  {
    Query q;
    q.table = "sales";
    q.Min("ts").Max("ts").Where("ts", CmpOp::kGe, int64_t{0});
    samples.push_back(q);
  }
  {
    Query q;
    q.table = "sales";
    q.Sum("amount");
    q.join = Join{"dim", "fk", "right:key"};
    samples.push_back(q);
  }
  return samples;
}

std::vector<Query> DimSamples() {
  std::vector<Query> samples;
  Query q;
  q.table = "dim";
  q.Sum("weight");
  q.join = Join{"sales", "key", "right:fk"};
  samples.push_back(q);
  return samples;
}

// One caching session (configurable inner) plus a plain reference session
// over the same tables.
class CachingBackendTest : public ::testing::Test {
 protected:
  void Build(const CacheOptions& cache, size_t shards = 2) {
    fact_ = MakeFactTable(800, 99);
    dim_ = MakeDimTable(7);

    SessionOptions options = TestOptions(BackendKind::kCachingSeabed);
    options.cache = cache;
    options.shards = shards;
    caching_ = std::make_unique<Session>(options);
    plain_ = std::make_unique<Session>(TestOptions(BackendKind::kPlain));
    for (Session* s : {caching_.get(), plain_.get()}) {
      s->Attach(CloneTable(*fact_), FactSchema(), SampleQueries());
      s->Attach(CloneTable(*dim_), DimSchema(), DimSamples());
    }
    backend_ = &dynamic_cast<CachingSeabedBackend&>(caching_->executor());
  }

  static Query RevenueByStore() {
    Query q;
    q.table = "sales";
    q.Sum("amount", "total").Count("n");
    q.Where("region", CmpOp::kEq, std::string("eu"));
    q.Where("ts", CmpOp::kGe, int64_t{20});
    q.GroupBy("store");
    return q;
  }

  std::shared_ptr<Table> fact_;
  std::shared_ptr<Table> dim_;
  std::unique_ptr<Session> caching_;
  std::unique_ptr<Session> plain_;
  CachingSeabedBackend* backend_ = nullptr;
};

TEST_F(CachingBackendTest, WarmRunHitsAndMatchesCold) {
  Build(CacheOptions{});
  const Query q = RevenueByStore();

  QueryStats cold;
  const std::vector<std::string> cold_rows = RowsAsStrings(caching_->Execute(q, &cold));
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.backend, "caching-seabed");
  EXPECT_GT(cold.server_seconds, 0.0);
  EXPECT_EQ(backend_->hits(), 0u);
  EXPECT_EQ(backend_->misses(), 1u);

  QueryStats warm;
  const std::vector<std::string> warm_rows = RowsAsStrings(caching_->Execute(q, &warm));
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.backend, "caching-seabed");
  EXPECT_EQ(warm.server_seconds, 0.0);
  EXPECT_EQ(warm.client_seconds, 0.0);
  EXPECT_GE(warm.cache_lookup_seconds, 0.0);
  EXPECT_EQ(warm.result_rows, cold.result_rows);
  EXPECT_EQ(warm.result_bytes, cold.result_bytes);
  EXPECT_EQ(warm.rows_touched, cold.rows_touched);
  EXPECT_EQ(backend_->hits(), 1u);
  EXPECT_EQ(backend_->misses(), 1u);

  EXPECT_EQ(warm_rows, cold_rows);
  EXPECT_EQ(warm_rows, RowsAsStrings(plain_->Execute(q, nullptr)));
}

TEST_F(CachingBackendTest, ReorderedFiltersHitTheSameEntry) {
  Build(CacheOptions{});
  Query a = RevenueByStore();
  caching_->Execute(a, nullptr);

  Query b;
  b.table = "sales";
  b.Sum("amount", "total").Count("n");
  b.Where("ts", CmpOp::kGe, int64_t{20});  // reordered conjunction
  b.Where("region", CmpOp::kEq, std::string("eu"));
  b.GroupBy("store");

  QueryStats stats;
  const ResultSet r = caching_->Execute(b, &stats);
  EXPECT_TRUE(stats.cache_hit);
  EXPECT_EQ(RowsAsStrings(r), RowsAsStrings(plain_->Execute(b, nullptr)));
}

TEST_F(CachingBackendTest, PlanCacheServesRepeatedShapesAcrossInvalidation) {
  Build(CacheOptions{});
  const Query q = RevenueByStore();

  QueryStats first;
  caching_->Execute(q, &first);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_EQ(backend_->plan_cache().size(), 1u);

  // Drop the results (as an append would) — the plan memo survives, so the
  // re-execution misses the result cache but skips translation.
  backend_->InvalidateResults();
  QueryStats second;
  caching_->Execute(q, &second);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(backend_->plan_cache().hits(), 1u);
}

TEST_F(CachingBackendTest, AppendInvalidatesFactResultsButNotPlans) {
  Build(CacheOptions{});
  const Query q = RevenueByStore();
  caching_->Execute(q, nullptr);
  ASSERT_EQ(backend_->entries(), 1u);

  const auto new_rows = MakeFactTable(60, 1234);
  caching_->Append("sales", *new_rows);
  plain_->Append("sales", *new_rows);
  EXPECT_EQ(backend_->entries(), 0u);  // stale entry dropped

  QueryStats stats;
  const ResultSet r = caching_->Execute(q, &stats);
  EXPECT_FALSE(stats.cache_hit);
  EXPECT_TRUE(stats.plan_cache_hit);  // plans survive appends
  EXPECT_EQ(RowsAsStrings(r), RowsAsStrings(plain_->Execute(q, nullptr)));

  // And the refreshed entry serves hits again.
  QueryStats warm;
  caching_->Execute(q, &warm);
  EXPECT_TRUE(warm.cache_hit);
}

TEST_F(CachingBackendTest, AppendToJoinRightSideInvalidatesJoinResults) {
  Build(CacheOptions{});
  Query join_q;
  join_q.table = "sales";
  join_q.Sum("right:weight", "w").Count("n");
  join_q.join = Join{"dim", "fk", "right:key"};

  Query scan_q = RevenueByStore();
  caching_->Execute(join_q, nullptr);
  caching_->Execute(scan_q, nullptr);
  ASSERT_EQ(backend_->entries(), 2u);

  const auto new_dim = MakeDimTable(555);
  caching_->Append("dim", *new_dim);
  plain_->Append("dim", *new_dim);

  // Only the query reading `dim` was dropped.
  EXPECT_EQ(backend_->entries(), 1u);
  QueryStats join_stats;
  const ResultSet r = caching_->Execute(join_q, &join_stats);
  EXPECT_FALSE(join_stats.cache_hit);
  EXPECT_EQ(RowsAsStrings(r), RowsAsStrings(plain_->Execute(join_q, nullptr)));
  QueryStats scan_stats;
  caching_->Execute(scan_q, &scan_stats);
  EXPECT_TRUE(scan_stats.cache_hit);
}

TEST_F(CachingBackendTest, LruEvictsByEntryBudget) {
  CacheOptions cache;
  cache.max_entries = 2;
  Build(cache);

  auto query_with_bound = [](int64_t bound) {
    Query q;
    q.table = "sales";
    q.Sum("amount", "total");
    q.Where("ts", CmpOp::kGe, bound);
    return q;
  };

  caching_->Execute(query_with_bound(1), nullptr);
  caching_->Execute(query_with_bound(2), nullptr);
  caching_->Execute(query_with_bound(1), nullptr);  // refresh 1 → 2 is LRU
  caching_->Execute(query_with_bound(3), nullptr);  // evicts 2
  EXPECT_EQ(backend_->entries(), 2u);

  QueryStats stats;
  caching_->Execute(query_with_bound(2), &stats);
  EXPECT_FALSE(stats.cache_hit);  // was evicted; re-inserting it evicts 1
  caching_->Execute(query_with_bound(1), &stats);
  EXPECT_FALSE(stats.cache_hit);  // 1 was the LRU entry once 2 re-entered
  caching_->Execute(query_with_bound(2), &stats);
  EXPECT_TRUE(stats.cache_hit);   // still resident
  EXPECT_EQ(backend_->entries(), 2u);
}

TEST_F(CachingBackendTest, PlanCacheIsBounded) {
  CacheOptions cache;
  cache.plan_cache_entries = 2;
  Build(cache);
  // A literal sweep (parameterized dashboard) mints a fresh plan key per
  // bound; the memo must stay within its budget instead of growing forever.
  for (int64_t bound = 0; bound < 6; ++bound) {
    Query q;
    q.table = "sales";
    q.Sum("amount", "total");
    q.Where("ts", CmpOp::kGe, bound);
    caching_->Execute(q, nullptr);
  }
  EXPECT_LE(backend_->plan_cache().size(), 2u);
}

TEST_F(CachingBackendTest, ByteBudgetBoundsTheCache) {
  CacheOptions cache;
  cache.max_bytes = 1;  // smaller than any entry: nothing sticks
  Build(cache);
  const Query q = RevenueByStore();

  const std::vector<std::string> first = RowsAsStrings(caching_->Execute(q, nullptr));
  EXPECT_EQ(backend_->entries(), 0u);
  EXPECT_EQ(backend_->cached_bytes(), 0u);

  QueryStats stats;
  const ResultSet r = caching_->Execute(q, &stats);
  EXPECT_FALSE(stats.cache_hit);  // never cached, still correct
  EXPECT_EQ(RowsAsStrings(r), first);
}

TEST_F(CachingBackendTest, ShardedInnerBackendWorks) {
  CacheOptions cache;
  cache.inner = BackendKind::kShardedSeabed;
  Build(cache, /*shards=*/3);
  const Query q = RevenueByStore();

  QueryStats cold;
  const std::vector<std::string> cold_rows = RowsAsStrings(caching_->Execute(q, &cold));
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold_rows, RowsAsStrings(plain_->Execute(q, nullptr)));

  QueryStats warm;
  EXPECT_EQ(RowsAsStrings(caching_->Execute(q, &warm)), cold_rows);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_TRUE(warm.shard_server_seconds.empty());
}

TEST_F(CachingBackendTest, BatchedRepeatsShareOneColdRun) {
  Build(CacheOptions{});
  const Query q = RevenueByStore();
  const std::vector<Query> batch(16, q);

  std::vector<QueryStats> stats;
  const std::vector<ResultSet> results =
      caching_->ExecuteBatch(std::span<const Query>(batch), &stats);
  ASSERT_EQ(results.size(), batch.size());
  const std::vector<std::string> reference = RowsAsStrings(plain_->Execute(q, nullptr));
  size_t cache_hits = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(RowsAsStrings(results[i]), reference);
    cache_hits += stats[i].cache_hit ? 1 : 0;
  }
  // Concurrent misses may race before the first insert publishes, but the
  // entry is keyed identically, so at least the steady state must hit.
  QueryStats warm;
  caching_->Execute(q, &warm);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(backend_->hits(), cache_hits + 1);
}

// Satellite regression for the invalidation-epoch race: warm lookups and
// appends run concurrently now (the snapshot-isolated inner backend lets
// Append skip the serve lock), so the epoch fence is genuinely contended —
// epoch_ is atomic with acquire/release ordering, and a miss whose lookup
// predates an append's invalidation must drop its insert instead of
// republishing a pre-append result. Every answer observed mid-race must
// equal the table at SOME append boundary (prefix-consistent snapshots,
// never torn), and the steady state after the race must be the final table.
TEST_F(CachingBackendTest, WarmLookupsRacingAppendsStayPrefixConsistent) {
  Build(CacheOptions{});
  const Query q = RevenueByStore();
  constexpr int kAppends = 8;

  // Stage the batches and the reference answer after each append boundary.
  std::vector<std::shared_ptr<Table>> batches;
  std::vector<std::vector<std::string>> references;
  references.push_back(RowsAsStrings(plain_->Execute(q, nullptr)));
  for (int i = 0; i < kAppends; ++i) {
    batches.push_back(MakeFactTable(40, 5000 + static_cast<uint64_t>(i)));
    plain_->Append("sales", *batches.back());
    references.push_back(RowsAsStrings(plain_->Execute(q, nullptr)));
  }

  caching_->Execute(q, nullptr);  // seed the cache: the race starts warm
  std::atomic<bool> done{false};
  std::atomic<size_t> inconsistent{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::vector<std::string> got = RowsAsStrings(caching_->Execute(q, nullptr));
        if (std::find(references.begin(), references.end(), got) == references.end()) {
          inconsistent.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < kAppends; ++i) {
    caching_->Append("sales", *batches[static_cast<size_t>(i)]);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) {
    reader.join();
  }

  EXPECT_EQ(inconsistent.load(), 0u);
  // The last invalidation must win: the steady state serves the final table,
  // not a stale entry a racing miss republished.
  EXPECT_EQ(RowsAsStrings(caching_->Execute(q, nullptr)), references.back());
  QueryStats warm;
  caching_->Execute(q, &warm);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(RowsAsStrings(caching_->Execute(q, nullptr)), references.back());
}

}  // namespace
}  // namespace seabed
