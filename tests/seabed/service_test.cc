// seabed::Service behavior: admission control, deadlines, drain semantics,
// shape batching / coalescing, append barrier ordering, lane priority, and
// multi-threaded equivalence with a sequential kPlain session. Everything
// here runs with modeled cluster overheads zeroed so the suite stays fast;
// the closed-loop throughput story lives in bench_fig14_service.
#include "src/seabed/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "src/seabed/executor.h"
#include "src/workload/synthetic.h"
#include "tests/seabed/test_util.h"

namespace seabed {
namespace {

constexpr uint64_t kRows = 1200;
constexpr uint64_t kGroups = 8;

SyntheticSpec TestSpec(uint64_t rows = kRows, uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.seed = seed;
  spec.group_cardinality = kGroups;
  return spec;
}

SessionOptions TestSessionOptions(BackendKind backend) {
  SessionOptions so;
  so.backend = backend;
  so.cluster.num_workers = 4;
  so.cluster.job_overhead_seconds = 0;
  so.cluster.task_overhead_seconds = 0;
  so.planner.expected_rows = kRows;
  so.shards = 2;
  so.key_seed = 99;
  return so;
}

ServiceOptions TestServiceOptions(BackendKind backend) {
  ServiceOptions options;
  options.session = TestSessionOptions(backend);
  options.num_workers = 4;
  options.max_queue_depth = 256;
  options.max_batch = 16;
  return options;
}

// Shared fixture: one synthetic table; the plain reference session and the
// service under test each attach their own clone so appends stay isolated.
class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : spec_(TestSpec()),
        table_(MakeSyntheticTable(spec_)),
        schema_(SyntheticSchema(spec_)),
        samples_(SyntheticSampleQueries(spec_)),
        plain_(TestSessionOptions(BackendKind::kPlain)) {
    plain_.Attach(CloneTable(*table_), schema_, samples_);
  }

  std::unique_ptr<Service> MakeService(ServiceOptions options) {
    auto service = std::make_unique<Service>(std::move(options));
    service->Attach(CloneTable(*table_), schema_, samples_);
    return service;
  }

  std::vector<Query> MixedQueries() const {
    return {SyntheticSumQuery(5),  SyntheticSumQuery(25), SyntheticSumQuery(50),
            SyntheticSumQuery(75), SyntheticSumQuery(100), SyntheticGroupByQuery(kGroups)};
  }

  SyntheticSpec spec_;
  std::shared_ptr<Table> table_;
  PlainSchema schema_;
  std::vector<Query> samples_;
  Session plain_;
};

TEST_F(ServiceTest, ServesQueriesAndMatchesPlain) {
  std::unique_ptr<Service> service = MakeService(TestServiceOptions(BackendKind::kSeabed));
  const std::vector<Query> queries = MixedQueries();
  std::vector<std::future<ServiceResult>> futures;
  for (const Query& q : queries) {
    futures.push_back(service->Submit(q));
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ServiceResult r = futures[i].get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.stats.admission, AdmissionOutcome::kAdmitted);
    EXPECT_GE(r.stats.queue_wait_seconds, 0.0);
    EXPECT_GE(r.stats.batch_size, 1u);
    EXPECT_EQ(RowsAsStrings(r.rows), RowsAsStrings(plain_.Execute(queries[i])));
  }
  service->Shutdown();
  const ServiceCounters c = service->counters();
  EXPECT_EQ(c.submitted, queries.size());
  EXPECT_EQ(c.executed, queries.size());
  EXPECT_EQ(c.rejected_queue_full, 0u);
}

TEST_F(ServiceTest, AdmissionRejectsBeyondMaxQueueDepth) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.autostart = false;  // no consumers: the queue fills deterministically
  options.max_queue_depth = 3;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(service->Submit(SyntheticSumQuery(40)));
  }
  // The overflow futures resolve immediately, without blocking the caller.
  for (int i = 3; i < 5; ++i) {
    ServiceResult r = futures[static_cast<size_t>(i)].get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.stats.admission, AdmissionOutcome::kRejectedQueueFull);
  }
  EXPECT_EQ(service->counters().rejected_queue_full, 2u);
  EXPECT_EQ(service->queue_depth(), 3u);

  service->Shutdown(/*drain=*/false);
  for (int i = 0; i < 3; ++i) {
    ServiceResult r = futures[static_cast<size_t>(i)].get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.stats.admission, AdmissionOutcome::kRejectedShutdown);
  }
  EXPECT_EQ(service->counters().executed, 0u);
}

TEST_F(ServiceTest, DeadlineExpiredQueriesFailWithoutExecuting) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.autostart = false;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  SubmitOptions expired;
  expired.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  // Same shape on purpose: both pop as ONE group and the expired member must
  // be filtered out of it, not dragged through execution.
  std::future<ServiceResult> dead = service->Submit(SyntheticSumQuery(40), expired);
  std::future<ServiceResult> live = service->Submit(SyntheticSumQuery(40));
  service->Start();

  ServiceResult dead_r = dead.get();
  EXPECT_FALSE(dead_r.ok);
  EXPECT_EQ(dead_r.stats.admission, AdmissionOutcome::kDeadlineExpired);
  EXPECT_EQ(dead_r.stats.query.backend, "");  // never executed

  ServiceResult live_r = live.get();
  ASSERT_TRUE(live_r.ok) << live_r.error;
  EXPECT_EQ(live_r.stats.batch_size, 1u);  // the expired sibling left the group
  EXPECT_EQ(RowsAsStrings(live_r.rows), RowsAsStrings(plain_.Execute(SyntheticSumQuery(40))));

  service->Shutdown();
  const ServiceCounters c = service->counters();
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.executed, 1u);
}

TEST_F(ServiceTest, DrainShutdownCompletesInFlightWork) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.num_workers = 2;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service->Submit(SyntheticSumQuery(10 + (i % 4) * 20)));
  }
  service->Shutdown(/*drain=*/true);  // must serve the whole backlog first
  for (auto& f : futures) {
    ServiceResult r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
  }
  EXPECT_EQ(service->counters().executed, 12u);

  // After shutdown, submissions bounce immediately.
  ServiceResult late = service->Submit(SyntheticSumQuery(40)).get();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.stats.admission, AdmissionOutcome::kRejectedShutdown);
}

TEST_F(ServiceTest, NoDrainShutdownFailsQueuedJobs) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.autostart = false;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service->Submit(SyntheticSumQuery(40)));
  }
  service->Shutdown(/*drain=*/false);
  for (auto& f : futures) {
    ServiceResult r = f.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.stats.admission, AdmissionOutcome::kRejectedShutdown);
  }
  EXPECT_EQ(service->counters().rejected_shutdown, 4u);
  EXPECT_EQ(service->counters().executed, 0u);
}

TEST_F(ServiceTest, ShapeBatchingCoalescesIdenticalQueriesAndTranslation) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.autostart = false;  // queue everything, then let ONE worker pop
  options.num_workers = 1;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  const Query q = SyntheticSumQuery(30);
  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service->Submit(q));
  }
  service->Start();

  const std::vector<std::string> expected = RowsAsStrings(plain_.Execute(q));
  size_t coalesced_flags = 0;
  for (auto& f : futures) {
    ServiceResult r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(RowsAsStrings(r.rows), expected);
    EXPECT_EQ(r.stats.batch_size, 8u);
    coalesced_flags += r.stats.coalesced ? 1 : 0;
  }
  service->Shutdown();

  // One group, one execution, one translation for eight submissions.
  EXPECT_EQ(coalesced_flags, 7u);
  const ServiceCounters c = service->counters();
  EXPECT_EQ(c.groups, 1u);
  EXPECT_EQ(c.executed, 8u);
  EXPECT_EQ(c.coalesced, 7u);
  EXPECT_EQ(c.max_group, 8u);
  EXPECT_EQ(service->plan_cache().misses(), 1u);
}

TEST_F(ServiceTest, SameShapeDifferentLiteralsKeepPerQueryStats) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.autostart = false;
  options.num_workers = 1;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  // Equal kShape fingerprints (the literal is elided) — one group, one
  // ExecuteBatch — but distinct kExact fingerprints, so no coalescing.
  const Query narrow = SyntheticSumQuery(5);
  const Query wide = SyntheticSumQuery(95);
  std::future<ServiceResult> f_narrow = service->Submit(narrow);
  std::future<ServiceResult> f_wide = service->Submit(wide);
  service->Start();

  ServiceResult narrow_r = f_narrow.get();
  ServiceResult wide_r = f_wide.get();
  service->Shutdown();
  ASSERT_TRUE(narrow_r.ok && wide_r.ok);
  EXPECT_EQ(narrow_r.stats.batch_size, 2u);
  EXPECT_EQ(wide_r.stats.batch_size, 2u);
  EXPECT_FALSE(narrow_r.stats.coalesced);
  EXPECT_FALSE(wide_r.stats.coalesced);
  EXPECT_EQ(service->counters().groups, 1u);

  // Per-query stats must belong to each query, not the last batch member:
  // the two selectivities touch very different row counts, and each must
  // agree with a serial plain-session run of the same query.
  QueryStats plain_narrow, plain_wide;
  EXPECT_EQ(RowsAsStrings(narrow_r.rows),
            RowsAsStrings(plain_.Execute(narrow, &plain_narrow)));
  EXPECT_EQ(RowsAsStrings(wide_r.rows), RowsAsStrings(plain_.Execute(wide, &plain_wide)));
  EXPECT_EQ(narrow_r.stats.query.rows_touched, plain_narrow.rows_touched);
  EXPECT_EQ(wide_r.stats.query.rows_touched, plain_wide.rows_touched);
  EXPECT_LT(narrow_r.stats.query.rows_touched, wide_r.stats.query.rows_touched);
}

TEST_F(ServiceTest, AppendsAreBarrierOrderedAgainstQueries) {
  std::unique_ptr<Service> service = MakeService(TestServiceOptions(BackendKind::kSeabed));
  const Query q = SyntheticSumQuery(100);
  std::shared_ptr<Table> batch = MakeSyntheticTable(TestSpec(/*rows=*/150, /*seed=*/123));

  // FIFO through one lane: the pre-query pops first and the post-query
  // cannot pop until the barrier thaws (append published). The barrier is
  // ordering-only on this snapshot-isolated backend, so the pre-query may
  // still pin the post-append version if the append publishes before it
  // executes — pre-or-post, never torn. The post-query is exact: it
  // dispatches strictly after the append completes.
  std::future<ServiceResult> before = service->Submit(q);
  std::future<ServiceResult> append = service->SubmitAppend("synthetic", batch);
  std::future<ServiceResult> after = service->Submit(q);

  const std::vector<std::string> plain_before = RowsAsStrings(plain_.Execute(q));
  ServiceResult before_r = before.get();
  ASSERT_TRUE(before_r.ok) << before_r.error;

  ServiceResult append_r = append.get();
  ASSERT_TRUE(append_r.ok) << append_r.error;

  plain_.Append("synthetic", *batch);
  const std::vector<std::string> plain_after = RowsAsStrings(plain_.Execute(q));
  ASSERT_NE(plain_before, plain_after);  // the batch must actually change the sum

  const std::vector<std::string> before_rows = RowsAsStrings(before_r.rows);
  EXPECT_TRUE(before_rows == plain_before || before_rows == plain_after)
      << "pre-barrier query matches neither the pre- nor post-append reference";

  ServiceResult after_r = after.get();
  ASSERT_TRUE(after_r.ok) << after_r.error;
  EXPECT_EQ(RowsAsStrings(after_r.rows), plain_after);

  service->Shutdown();
  EXPECT_EQ(service->counters().appends, 1u);
}

// The deadline is re-checked at DISPATCH, not just at dequeue: a query that
// was alive when popped but expired in the dequeue->dispatch window (here
// widened by the test hook; in production, group assembly or a prior group
// pacing out modeled latency on the same worker) must fail fast instead of
// executing.
TEST_F(ServiceTest, DeadlineRecheckedAtDispatch) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.autostart = false;
  options.num_workers = 1;
  options.pre_dispatch_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  };
  std::unique_ptr<Service> service = MakeService(std::move(options));

  SubmitOptions submit;
  // Comfortably alive at dequeue, long expired once the hook has run.
  submit.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(250);
  std::future<ServiceResult> f = service->Submit(SyntheticSumQuery(40), submit);
  service->Start();

  ServiceResult r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.stats.admission, AdmissionOutcome::kDeadlineExpired);
  EXPECT_EQ(r.stats.query.backend, "");  // never executed
  service->Shutdown();
  const ServiceCounters c = service->counters();
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.executed, 0u);
}

// The tentpole's serving-layer claim, deterministically: a query group paced
// through modeled latency is mid-execution when an append dispatches; on a
// snapshot-isolated backend the append completes INSIDE the query's span.
// force_quiesce_appends restores the legacy exclusion — the same scenario
// then strictly orders the append after the query's span.
TEST_F(ServiceTest, AppendOverlapsPacedQueriesUnlessForcedToQuiesce) {
  for (const bool force_quiesce : {false, true}) {
    SCOPED_TRACE(force_quiesce ? "force-quiesce" : "snapshot");
    ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
    options.session.cluster.job_overhead_seconds = 0.2;  // modeled, slept out
    options.pace_modeled_latency = true;
    options.force_quiesce_appends = force_quiesce;
    options.num_workers = 2;
    std::unique_ptr<Service> service = MakeService(std::move(options));
    std::shared_ptr<Table> batch = MakeSyntheticTable(TestSpec(/*rows=*/60, /*seed=*/11));

    std::future<ServiceResult> query = service->Submit(SyntheticSumQuery(50));
    // Wait until the query group is dequeued (the queue empties), so the
    // append demonstrably arrives while the query is executing.
    while (service->queue_depth() > 0) {
      std::this_thread::yield();
    }
    std::future<ServiceResult> append = service->SubmitAppend("synthetic", batch);

    ServiceResult append_r = append.get();
    ServiceResult query_r = query.get();
    ASSERT_TRUE(append_r.ok) << append_r.error;
    ASSERT_TRUE(query_r.ok) << query_r.error;
    const bool overlapped = append_r.stats.exec_begin < query_r.stats.exec_end &&
                            query_r.stats.exec_begin < append_r.stats.exec_end;
    if (force_quiesce) {
      EXPECT_FALSE(overlapped);
      EXPECT_GE(append_r.stats.exec_begin, query_r.stats.exec_end);
    } else {
      EXPECT_TRUE(overlapped);
    }
    service->Shutdown();
  }
}

TEST_F(ServiceTest, InteractiveLaneDispatchesBeforeBatchLane) {
  ServiceOptions options = TestServiceOptions(BackendKind::kSeabed);
  options.autostart = false;
  options.num_workers = 1;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  SubmitOptions batch_lane;
  batch_lane.lane = ServiceLane::kBatch;
  std::future<ServiceResult> slow1 = service->Submit(SyntheticGroupByQuery(kGroups), batch_lane);
  std::future<ServiceResult> slow2 = service->Submit(SyntheticSumQuery(60), batch_lane);
  std::future<ServiceResult> probe = service->Submit(SyntheticSumQuery(10));  // interactive
  service->Start();

  ServiceResult probe_r = probe.get();
  ServiceResult slow1_r = slow1.get();
  ServiceResult slow2_r = slow2.get();
  service->Shutdown();
  ASSERT_TRUE(probe_r.ok && slow1_r.ok && slow2_r.ok);
  EXPECT_EQ(probe_r.stats.lane, ServiceLane::kInteractive);
  EXPECT_EQ(slow1_r.stats.lane, ServiceLane::kBatch);
  // Queued last, dispatched first: the interactive lane outranks the backlog.
  EXPECT_LT(probe_r.stats.dispatch_seq, slow1_r.stats.dispatch_seq);
  EXPECT_LT(probe_r.stats.dispatch_seq, slow2_r.stats.dispatch_seq);
}

TEST_F(ServiceTest, CachingBackendInvalidatesThroughServiceAppends) {
  ServiceOptions options = TestServiceOptions(BackendKind::kCachingSeabed);
  std::unique_ptr<Service> service = MakeService(std::move(options));
  const Query q = SyntheticSumQuery(100);

  ServiceResult cold = service->Submit(q).get();
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(RowsAsStrings(cold.rows), RowsAsStrings(plain_.Execute(q)));

  ServiceResult warm = service->Submit(q).get();
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.stats.query.cache_hit);

  std::shared_ptr<Table> batch = MakeSyntheticTable(TestSpec(/*rows=*/150, /*seed=*/321));
  ASSERT_TRUE(service->SubmitAppend("synthetic", batch).get().ok);
  plain_.Append("synthetic", *batch);

  ServiceResult fresh = service->Submit(q).get();
  ASSERT_TRUE(fresh.ok);
  EXPECT_FALSE(fresh.stats.query.cache_hit);  // the append invalidated it
  EXPECT_EQ(RowsAsStrings(fresh.rows), RowsAsStrings(plain_.Execute(q)));
  service->Shutdown();
}

// The TSan centerpiece: many submitter threads, every backend stack, results
// must match a sequential plain session query-for-query.
class ServiceConcurrencyTest : public ServiceTest,
                               public ::testing::WithParamInterface<BackendKind> {};

TEST_P(ServiceConcurrencyTest, ConcurrentSubmittersMatchPlainReference) {
  ServiceOptions options = TestServiceOptions(GetParam());
  options.num_workers = 6;
  std::unique_ptr<Service> service = MakeService(std::move(options));

  const std::vector<Query> pool = MixedQueries();
  std::vector<std::vector<std::string>> expected;
  expected.reserve(pool.size());
  for (const Query& q : pool) {
    expected.push_back(RowsAsStrings(plain_.Execute(q)));
  }

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<std::pair<size_t, std::future<ServiceResult>>> local;
      for (int i = 0; i < kPerThread; ++i) {
        const size_t pick = static_cast<size_t>((t * 7 + i) % pool.size());
        SubmitOptions submit;
        submit.lane = (i % 3 == 0) ? ServiceLane::kBatch : ServiceLane::kInteractive;
        local.emplace_back(pick, service->Submit(pool[pick], submit));
      }
      for (auto& [pick, future] : local) {
        ServiceResult r = future.get();
        if (!r.ok || RowsAsStrings(r.rows) != expected[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  service->Shutdown();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service->counters().executed, static_cast<uint64_t>(kThreads * kPerThread));
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceConcurrencyTest,
                         ::testing::Values(BackendKind::kSeabed, BackendKind::kShardedSeabed,
                                           BackendKind::kCachingSeabed),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           std::string name = BackendKindName(info.param);
                           name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
                           return name;
                         });

}  // namespace
}  // namespace seabed
