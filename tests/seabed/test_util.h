// Shared helpers for the seabed test suites: canonical row stringification
// (order-insensitive, doubles rounded to 4 places so encrypted pipelines
// byte-match the plaintext reference) and the two-round probe stats
// invariants applied across backends.
#ifndef SEABED_TESTS_SEABED_TEST_UTIL_H_
#define SEABED_TESTS_SEABED_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/seabed/session.h"

namespace seabed {

inline std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Stats-invariant helper for the two-round probe path, applied across the
// backend tests: replaying `q` with probe off and probe forced must (a)
// return `reference` both times, (b) never report probe stats with the probe
// off, and (c) with the probe forced, touch at most as many rows as the full
// scan — pruning only skips row groups that hold no match, so the
// predicate-surviving row count can never grow. On the sharded backend the
// per-shard accounting must also keep the probe round separate from round
// two: a shard pruned in round one runs no round two and bills none.
// Backends that ignore the probe (kPlain, kPaillier) pass trivially with
// probe_used == false.
inline void ExpectProbeStatsInvariants(Session& session, const Query& q,
                                       const std::vector<std::string>& reference) {
  const ProbeOptions saved = session.probe_options();
  ProbeOptions popts = saved;
  popts.mode = ProbeMode::kOff;
  session.set_probe_options(popts);
  QueryStats off;
  EXPECT_EQ(RowsAsStrings(session.Execute(q, &off)), reference);
  if (!q.needs_two_round_trips) {
    EXPECT_FALSE(off.probe_used);
    EXPECT_EQ(off.row_groups_pruned, 0u);
    for (const double s : off.shard_probe_seconds) {
      EXPECT_EQ(s, 0.0);  // no probe round ran, so nothing may bill to one
    }
  }

  popts.mode = ProbeMode::kForced;
  popts.row_group_size = 256;
  session.set_probe_options(popts);
  QueryStats forced;
  EXPECT_EQ(RowsAsStrings(session.Execute(q, &forced)), reference);
  EXPECT_LE(forced.rows_touched, off.rows_touched);
  if (forced.probe_used) {
    EXPECT_LE(forced.row_groups_pruned, forced.row_groups_total);
  } else {
    EXPECT_EQ(forced.row_groups_total, 0u);
  }
  // Two-round accounting stays separated (sharded backends; empty vectors on
  // single-server ones): probe and round-two vectors cover the same fleet,
  // no shard's probe exceeds the reported probe round (shards probe in
  // parallel), and the slowest shard's round two fits inside server_seconds.
  EXPECT_EQ(forced.shard_probe_seconds.size(), forced.shard_server_seconds.size());
  for (const double s : forced.shard_probe_seconds) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, forced.probe_seconds + 1e-9);
  }
  for (const double s : forced.shard_server_seconds) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, forced.server_seconds + 1e-9);
  }
  if (!forced.probe_used) {
    for (const double s : forced.shard_probe_seconds) {
      EXPECT_EQ(s, 0.0);
    }
  }
  // Round-zero routing accounting (key-range sharded sessions; both fields
  // zero on single-server backends). Routing reads only the query's
  // clustering-key predicates and the pinned version's boundaries, so it is
  // independent of probe mode — both runs must report the same subset; a
  // non-routable query reports the full fleet. Routing happens before the
  // probe round, so when it proves zero owners both rounds are skipped: no
  // probe, no rows touched.
  EXPECT_LE(off.shards_routed, off.shards_total);
  EXPECT_LE(forced.shards_routed, forced.shards_total);
  EXPECT_EQ(off.shards_total, forced.shards_total);
  EXPECT_EQ(off.shards_routed, forced.shards_routed);
  if (forced.shards_total > 0 && forced.shards_routed == 0) {
    EXPECT_FALSE(forced.probe_used);
    EXPECT_EQ(forced.rows_touched, 0u);
    EXPECT_EQ(off.rows_touched, 0u);
  }
  session.set_probe_options(saved);
}

// Stats-invariant helper for the prepared-statement path, applied across the
// backend tests: executing `shape` via Prepare+bind must (a) return
// `reference` (the ad-hoc answer), (b) report prepared=true with a
// non-negative bind time on every backend — including fallback executions of
// non-parameterized handles — while the ad-hoc run of the bound query
// reports prepared=false, and (c) on a parameterized handle, re-executing
// with fresh params must not retranslate (plan_cache_hit on the second run;
// result-cache hits replay client-side and never translate at all).
inline void ExpectPreparedStatsInvariants(Session& session, const Query& shape,
                                          const std::vector<Value>& params,
                                          const std::vector<std::string>& reference) {
  const PreparedQuery prepared = session.Prepare(shape);
  EXPECT_EQ(prepared.num_params(), params.size());

  QueryStats adhoc;
  EXPECT_EQ(RowsAsStrings(session.Execute(prepared.Bind(params), &adhoc)), reference);
  EXPECT_FALSE(adhoc.prepared);
  EXPECT_EQ(adhoc.bind_seconds, 0.0);

  QueryStats first;
  EXPECT_EQ(RowsAsStrings(session.Execute(prepared, params, &first)), reference);
  EXPECT_TRUE(first.prepared);
  EXPECT_GE(first.bind_seconds, 0.0);

  QueryStats second;
  EXPECT_EQ(RowsAsStrings(session.Execute(prepared, params, &second)), reference);
  EXPECT_TRUE(second.prepared);
  if (prepared.parameterized() && !second.cache_hit &&
      session.backend_kind() != BackendKind::kPlain &&
      session.backend_kind() != BackendKind::kPaillier) {
    EXPECT_TRUE(second.plan_cache_hit);
  }
}

}  // namespace seabed

#endif  // SEABED_TESTS_SEABED_TEST_UTIL_H_
