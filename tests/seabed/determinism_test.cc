// Determinism regression: encryption is a pure function of (master-key seed,
// plan, plaintext). Two Sessions built from the same `key_seed` must produce
// byte-identical encrypted databases and identical QueryStats.rows_touched;
// a different seed must change the ciphertexts. This pins the property the
// sharded backend's disjoint identifier spaces and the append path both rely
// on — any nondeterminism (iteration-order leaks, uninitialized cells, clock
// or address dependence) breaks reproducible uploads and cross-session
// equivalence.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/serialize.h"
#include "src/seabed/session.h"
#include "src/seabed/sharded_backend.h"

namespace seabed {
namespace {

struct Dataset {
  std::shared_ptr<Table> table;
  PlainSchema schema;
  std::vector<Query> samples;
};

Dataset MakeDataset() {
  Dataset d;
  d.schema.table_name = "emp";
  ValueDistribution country;
  country.values = {"usa", "canada", "india"};
  country.frequencies = {0.6, 0.3, 0.1};
  d.schema.columns.push_back({"country", ColumnType::kString, true, country});
  d.schema.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
  d.schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  d.schema.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});

  d.table = std::make_shared<Table>("emp");
  auto country_col = std::make_shared<StringColumn>();
  auto store_col = std::make_shared<StringColumn>();
  auto ts_col = std::make_shared<Int64Column>();
  auto salary_col = std::make_shared<Int64Column>();
  Rng rng(4242);
  const char* countries[] = {"usa", "canada", "india"};
  const char* stores[] = {"s1", "s2", "s3"};
  for (int i = 0; i < 600; ++i) {
    country_col->Append(countries[rng.Below(3)]);
    store_col->Append(stores[rng.Below(3)]);
    ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
    salary_col->Append(rng.Range(0, 100000));
  }
  d.table->AddColumn("country", country_col);
  d.table->AddColumn("store", store_col);
  d.table->AddColumn("ts", ts_col);
  d.table->AddColumn("salary", salary_col);

  {
    Query q;
    q.table = "emp";
    q.Sum("salary").Count().Min("ts").Max("ts");
    q.Where("country", CmpOp::kEq, std::string("india"));
    q.Where("ts", CmpOp::kGe, int64_t{500});
    q.GroupBy("store");
    d.samples.push_back(q);
  }
  return d;
}

SessionOptions OptionsFor(BackendKind backend, uint64_t key_seed) {
  SessionOptions options;
  options.backend = backend;
  options.key_seed = key_seed;
  options.shards = 3;
  options.planner.expected_rows = 600;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  return options;
}

SessionOptions KeyRangeOptionsFor(uint64_t key_seed) {
  SessionOptions options = OptionsFor(BackendKind::kShardedSeabed, key_seed);
  options.shards_placement.policy = PlacementPolicy::kKeyRange;
  options.shards_placement.clustering_columns["emp"] = "ts";
  return options;
}

uint64_t Fnv1a(const Bytes& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (const auto b : bytes) {
    h ^= static_cast<uint8_t>(b);
    h *= 1099511628211ULL;
  }
  return h;
}

Query RangeQuery() {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{250});
  return q;
}

TEST(DeterminismTest, SameSeedProducesByteIdenticalEncryptedDatabases) {
  const Dataset d = MakeDataset();
  Session a(OptionsFor(BackendKind::kSeabed, 99));
  Session b(OptionsFor(BackendKind::kSeabed, 99));
  a.Attach(d.table, d.schema, d.samples);
  b.Attach(d.table, d.schema, d.samples);

  const Bytes bytes_a = SerializeTable(*a.encrypted_database("emp").table);
  const Bytes bytes_b = SerializeTable(*b.encrypted_database("emp").table);
  EXPECT_EQ(bytes_a, bytes_b);

  QueryStats stats_a, stats_b;
  const Query q = RangeQuery();
  a.Execute(q, &stats_a);
  b.Execute(q, &stats_b);
  EXPECT_GT(stats_a.rows_touched, 0u);
  EXPECT_EQ(stats_a.rows_touched, stats_b.rows_touched);

  // An ORE range predicate filters the same rows the plaintext executor
  // touches, so the count also matches the NoEnc backend.
  Session plain(OptionsFor(BackendKind::kPlain, 99));
  plain.Attach(d.table, d.schema, d.samples);
  QueryStats stats_plain;
  plain.Execute(q, &stats_plain);
  EXPECT_EQ(stats_plain.rows_touched, stats_a.rows_touched);
}

TEST(DeterminismTest, SameSeedShardedBackendsMatchShardByShard) {
  const Dataset d = MakeDataset();
  Session a(OptionsFor(BackendKind::kShardedSeabed, 7));
  Session b(OptionsFor(BackendKind::kShardedSeabed, 7));
  a.Attach(d.table, d.schema, d.samples);
  b.Attach(d.table, d.schema, d.samples);

  auto& backend_a = static_cast<ShardedSeabedBackend&>(a.executor());
  auto& backend_b = static_cast<ShardedSeabedBackend&>(b.executor());
  ASSERT_EQ(backend_a.num_shards(), backend_b.num_shards());
  for (size_t s = 0; s < backend_a.num_shards(); ++s) {
    EXPECT_EQ(SerializeTable(*backend_a.shard_database("emp", s).table),
              SerializeTable(*backend_b.shard_database("emp", s).table))
        << "shard " << s;
  }

  QueryStats stats_a, stats_b;
  const Query q = RangeQuery();
  a.Execute(q, &stats_a);
  b.Execute(q, &stats_b);
  EXPECT_EQ(stats_a.rows_touched, stats_b.rows_touched);
}

// Rebalancing is part of the deterministic-upload contract too: migration
// planning reads only row counts, and donor re-encryption allocates
// identifier-space slots in a fixed order, so two sessions fed the same
// skewed append stream must still produce byte-identical shard databases.
TEST(DeterminismTest, SameSeedRebalancedShardsMatchShardByShard) {
  const Dataset d = MakeDataset();
  auto options = [&] {
    SessionOptions o = OptionsFor(BackendKind::kShardedSeabed, 55);
    o.shards_rebalance.enabled = true;
    o.shards_rebalance.max_skew_ratio = 1.2;
    o.shards_rebalance.row_group_size = 64;
    return o;
  };
  Session a(options());
  Session b(options());
  // Each session owns its table: appends grow it in place.
  a.AttachPlanned(CloneTable(*d.table), d.schema,
                  PlanEncryption(d.schema, d.samples, PlannerOptions{}));
  b.AttachPlanned(CloneTable(*d.table), d.schema,
                  PlanEncryption(d.schema, d.samples, PlannerOptions{}));

  auto& backend_a = static_cast<ShardedSeabedBackend&>(a.executor());
  auto& backend_b = static_cast<ShardedSeabedBackend&>(b.executor());

  // A skewed stream: every batch steered onto one placement bucket, forcing
  // migrations in both sessions.
  size_t total_rows = d.table->NumRows();
  const size_t hot = backend_a.ShardOfRow(total_rows);
  Rng rng(9);
  auto append_batch = [&](size_t rows) {
    auto batch = std::make_shared<Table>("emp");
    auto country = std::make_shared<StringColumn>();
    auto store = std::make_shared<StringColumn>();
    auto ts = std::make_shared<Int64Column>();
    auto salary = std::make_shared<Int64Column>();
    for (size_t i = 0; i < rows; ++i) {
      country->Append("india");
      store->Append("s1");
      ts->Append(static_cast<int64_t>(rng.Below(1000)));
      salary->Append(rng.Range(0, 100000));
    }
    batch->AddColumn("country", country);
    batch->AddColumn("store", store);
    batch->AddColumn("ts", ts);
    batch->AddColumn("salary", salary);
    a.Append("emp", *batch);
    b.Append("emp", *batch);
    total_rows += rows;
  };
  for (int round = 0; round < 4; ++round) {
    while (backend_a.ShardOfRow(total_rows) != hot) {
      append_batch(1);
    }
    append_batch(200);
  }

  ASSERT_TRUE(a.rebalance_stats().has_value());
  EXPECT_GT(a.rebalance_stats()->rebalances, 0u);
  EXPECT_EQ(a.rebalance_stats()->rows_moved, b.rebalance_stats()->rows_moved);
  EXPECT_EQ(a.rebalance_stats()->rows_reencrypted, b.rebalance_stats()->rows_reencrypted);
  for (size_t s = 0; s < backend_a.num_shards(); ++s) {
    EXPECT_EQ(SerializeTable(*backend_a.shard_database("emp", s).table),
              SerializeTable(*backend_b.shard_database("emp", s).table))
        << "shard " << s;
  }

  QueryStats stats_a, stats_b;
  const Query q = RangeQuery();
  a.Execute(q, &stats_a);
  b.Execute(q, &stats_b);
  EXPECT_EQ(stats_a.rows_touched, stats_b.rows_touched);
}

// Golden pin: the placement refactor (PlacementPolicy, PR 10) must not
// perturb hash placement by a single byte. These digests were captured on
// the pre-refactor backend (fixed dataset, fixed seeds — every input to the
// encryption pipeline is deterministic, so they are machine-independent).
// If an intentional placement/encryption change breaks them, recapture by
// printing Fnv1a(SerializeTable(...)) for each shard and update — but
// understand first why the bytes moved.
TEST(DeterminismTest, HashPlacementBytesUnchangedSinceCapture) {
  const Dataset d = MakeDataset();
  Session a(OptionsFor(BackendKind::kShardedSeabed, 7));
  a.Attach(d.table, d.schema, d.samples);
  auto& backend = static_cast<ShardedSeabedBackend&>(a.executor());
  const uint64_t kAttachGolden[3] = {0xa3441ca693f1eb35ULL, 0x9893068020fe055dULL,
                                     0x56d4fbac33fac6b2ULL};
  ASSERT_EQ(backend.num_shards(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(Fnv1a(SerializeTable(*backend.shard_database("emp", s).table)), kAttachGolden[s])
        << "attach shard " << s;
  }
}

TEST(DeterminismTest, HashRebalanceBytesUnchangedSinceCapture) {
  const Dataset d = MakeDataset();
  SessionOptions o = OptionsFor(BackendKind::kShardedSeabed, 55);
  o.shards_rebalance.enabled = true;
  o.shards_rebalance.max_skew_ratio = 1.2;
  o.shards_rebalance.row_group_size = 64;
  Session a(o);
  a.AttachPlanned(CloneTable(*d.table), d.schema,
                  PlanEncryption(d.schema, d.samples, PlannerOptions{}));
  auto& backend = static_cast<ShardedSeabedBackend&>(a.executor());

  // The exact skewed stream of SameSeedRebalancedShardsMatchShardByShard.
  size_t total_rows = d.table->NumRows();
  const size_t hot = backend.ShardOfRow(total_rows);
  Rng rng(9);
  auto append_batch = [&](size_t rows) {
    auto batch = std::make_shared<Table>("emp");
    auto country = std::make_shared<StringColumn>();
    auto store = std::make_shared<StringColumn>();
    auto ts = std::make_shared<Int64Column>();
    auto salary = std::make_shared<Int64Column>();
    for (size_t i = 0; i < rows; ++i) {
      country->Append("india");
      store->Append("s1");
      ts->Append(static_cast<int64_t>(rng.Below(1000)));
      salary->Append(rng.Range(0, 100000));
    }
    batch->AddColumn("country", country);
    batch->AddColumn("store", store);
    batch->AddColumn("ts", ts);
    batch->AddColumn("salary", salary);
    a.Append("emp", *batch);
    total_rows += rows;
  };
  for (int round = 0; round < 4; ++round) {
    while (backend.ShardOfRow(total_rows) != hot) {
      append_batch(1);
    }
    append_batch(200);
  }

  // Migration planning, donor selection and slot allocation all pinned.
  EXPECT_EQ(a.rebalance_stats()->rebalances, 4u);
  EXPECT_EQ(a.rebalance_stats()->rows_moved, 492u);
  EXPECT_EQ(a.rebalance_stats()->rows_reencrypted, 1664u);
  EXPECT_EQ(a.rebalance_stats()->row_groups_moved, 11u);
  const uint64_t kRebalGolden[3] = {0x5cd848eab257d438ULL, 0xf6ef9fef98042023ULL,
                                    0x0da4f57f4c09b825ULL};
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(Fnv1a(SerializeTable(*backend.shard_database("emp", s).table)), kRebalGolden[s])
        << "rebalanced shard " << s;
  }
}

// Key-range placement joins the deterministic-upload contract: quantile
// partitioning, per-row append assignment and boundary moves read only
// (keys, row order, counts), so two same-seed sessions fed the same stream
// must produce byte-identical shards — including after boundary-move
// rebalances triggered by a time-ordered (hot-tail) append stream.
TEST(DeterminismTest, SameSeedKeyRangeShardsMatchShardByShard) {
  const Dataset d = MakeDataset();
  auto options = [&] {
    SessionOptions o = KeyRangeOptionsFor(123);
    o.shards_rebalance.enabled = true;
    o.shards_rebalance.max_skew_ratio = 1.2;
    o.shards_rebalance.row_group_size = 64;
    return o;
  };
  Session a(options());
  Session b(options());
  a.AttachPlanned(CloneTable(*d.table), d.schema,
                  PlanEncryption(d.schema, d.samples, PlannerOptions{}));
  b.AttachPlanned(CloneTable(*d.table), d.schema,
                  PlanEncryption(d.schema, d.samples, PlannerOptions{}));

  auto& backend_a = static_cast<ShardedSeabedBackend&>(a.executor());
  auto& backend_b = static_cast<ShardedSeabedBackend&>(b.executor());
  for (size_t s = 0; s < backend_a.num_shards(); ++s) {
    EXPECT_EQ(SerializeTable(*backend_a.shard_database("emp", s).table),
              SerializeTable(*backend_b.shard_database("emp", s).table))
        << "attach shard " << s;
  }

  // Time keeps moving forward: every appended key lands past the last
  // shard's hi, concentrating rows on the tail shard until boundary moves
  // fire in both sessions.
  Rng rng(31);
  int64_t clock = 1000;
  for (int round = 0; round < 6; ++round) {
    auto batch = std::make_shared<Table>("emp");
    auto country = std::make_shared<StringColumn>();
    auto store = std::make_shared<StringColumn>();
    auto ts = std::make_shared<Int64Column>();
    auto salary = std::make_shared<Int64Column>();
    for (size_t i = 0; i < 150; ++i) {
      country->Append("india");
      store->Append("s1");
      ts->Append(clock++);
      salary->Append(rng.Range(0, 100000));
    }
    batch->AddColumn("country", country);
    batch->AddColumn("store", store);
    batch->AddColumn("ts", ts);
    batch->AddColumn("salary", salary);
    a.Append("emp", *batch);
    b.Append("emp", *batch);
  }

  ASSERT_TRUE(a.rebalance_stats().has_value());
  EXPECT_GT(a.rebalance_stats()->rebalances, 0u);
  EXPECT_EQ(a.rebalance_stats()->rows_moved, b.rebalance_stats()->rows_moved);
  EXPECT_EQ(a.rebalance_stats()->rows_reencrypted, b.rebalance_stats()->rows_reencrypted);
  for (size_t s = 0; s < backend_a.num_shards(); ++s) {
    EXPECT_EQ(SerializeTable(*backend_a.shard_database("emp", s).table),
              SerializeTable(*backend_b.shard_database("emp", s).table))
        << "shard " << s;
  }

  QueryStats stats_a, stats_b;
  const Query q = RangeQuery();
  a.Execute(q, &stats_a);
  b.Execute(q, &stats_b);
  EXPECT_EQ(stats_a.rows_touched, stats_b.rows_touched);
  EXPECT_EQ(stats_a.shards_routed, stats_b.shards_routed);

  // And the result matches plaintext — routed execution loses no rows.
  Session plain(OptionsFor(BackendKind::kPlain, 123));
  plain.Attach(CloneTable(*d.table), d.schema, d.samples);
  // Rebuild the identical stream for the plain reference.
  Rng prng(31);
  int64_t pclock = 1000;
  for (int round = 0; round < 6; ++round) {
    auto batch = std::make_shared<Table>("emp");
    auto country = std::make_shared<StringColumn>();
    auto store = std::make_shared<StringColumn>();
    auto ts = std::make_shared<Int64Column>();
    auto salary = std::make_shared<Int64Column>();
    for (size_t i = 0; i < 150; ++i) {
      country->Append("india");
      store->Append("s1");
      ts->Append(pclock++);
      salary->Append(prng.Range(0, 100000));
    }
    batch->AddColumn("country", country);
    batch->AddColumn("store", store);
    batch->AddColumn("ts", ts);
    batch->AddColumn("salary", salary);
    plain.Append("emp", *batch);
  }
  QueryStats stats_plain;
  plain.Execute(q, &stats_plain);
  EXPECT_EQ(stats_plain.rows_touched, stats_a.rows_touched);
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentCiphertexts) {
  const Dataset d = MakeDataset();
  Session a(OptionsFor(BackendKind::kSeabed, 99));
  Session b(OptionsFor(BackendKind::kSeabed, 100));
  a.Attach(d.table, d.schema, d.samples);
  b.Attach(d.table, d.schema, d.samples);

  EXPECT_NE(SerializeTable(*a.encrypted_database("emp").table),
            SerializeTable(*b.encrypted_database("emp").table));

  // The divergence reaches every scheme, not just one column family.
  const Table& ta = *a.encrypted_database("emp").table;
  const Table& tb = *b.encrypted_database("emp").table;
  const auto* ashe_a = static_cast<const AsheColumn*>(ta.GetColumn("salary#ashe").get());
  const auto* ashe_b = static_cast<const AsheColumn*>(tb.GetColumn("salary#ashe").get());
  bool ashe_differs = false;
  for (size_t row = 0; row < ashe_a->RowCount() && !ashe_differs; ++row) {
    ashe_differs = ashe_a->Get(row) != ashe_b->Get(row);
  }
  EXPECT_TRUE(ashe_differs);
}

}  // namespace
}  // namespace seabed
