#include "src/seabed/encryptor.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/crypto/ashe.h"
#include "src/crypto/det.h"
#include "src/seabed/planner.h"

namespace seabed {
namespace {

struct Fixture {
  Fixture() : keys(ClientKeys::FromSeed(5)) {
    schema.table_name = "emp";
    ValueDistribution country;
    country.values = {"usa", "canada", "india", "chile", "iraq", "japan"};
    country.frequencies = {0.4, 0.4, 0.06, 0.05, 0.05, 0.04};
    schema.columns.push_back({"country", ColumnType::kString, true, country});
    schema.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});

    Query q;
    q.table = "emp";
    q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("india"));
    queries.push_back(q);

    PlannerOptions options;
    options.expected_rows = 3000;
    plan = PlanEncryption(schema, queries, options);

    table = std::make_shared<Table>("emp");
    auto country_col = std::make_shared<StringColumn>();
    auto salary_col = std::make_shared<Int64Column>();
    Rng rng(9);
    const char* values[] = {"usa", "canada", "india", "chile", "iraq", "japan"};
    const double cdf[] = {0.4, 0.8, 0.86, 0.91, 0.96, 1.0};
    for (int i = 0; i < 3000; ++i) {
      const double u = rng.NextDouble();
      int pick = 0;
      while (u > cdf[pick]) {
        ++pick;
      }
      country_col->Append(values[pick]);
      salary_col->Append(rng.Range(10000, 200000));
    }
    table->AddColumn("country", country_col);
    table->AddColumn("salary", salary_col);

    const Encryptor encryptor(keys);
    db = encryptor.Encrypt(*table, schema, plan);
  }

  ClientKeys keys;
  PlainSchema schema;
  std::vector<Query> queries;
  EncryptionPlan plan;
  std::shared_ptr<Table> table;
  EncryptedDatabase db;
};

TEST(EncryptorTest, SplasheColumnsExist) {
  const Fixture f;
  const SplasheLayout* layout = f.plan.FindSplashe("country");
  ASSERT_NE(layout, nullptr);
  ASSERT_TRUE(layout->enhanced);
  for (const std::string& v : layout->splayed_values) {
    EXPECT_TRUE(f.db.table->HasColumn(layout->CountColumn(v))) << v;
    EXPECT_TRUE(f.db.table->HasColumn(SplasheLayout::MeasureColumn("salary", v))) << v;
  }
  EXPECT_TRUE(f.db.table->HasColumn(layout->OthersCountColumn()));
  EXPECT_TRUE(f.db.table->HasColumn(SplasheLayout::OthersMeasureColumn("salary")));
  EXPECT_TRUE(f.db.table->HasColumn(layout->DetColumn()));
  // The splayed dimension itself is gone (the only DET column is the
  // frequency-equalized one the layout owns).
  EXPECT_FALSE(f.db.table->HasColumn("country"));
  EXPECT_FALSE(f.db.table->HasColumn("country#ashe"));
}

TEST(EncryptorTest, EnhancedDetFrequenciesAreEqualized) {
  // The core SPLASHE security property: every DET token appears (nearly)
  // equally often, regardless of the true value distribution.
  const Fixture f;
  const SplasheLayout* layout = f.plan.FindSplashe("country");
  ASSERT_NE(layout, nullptr);
  const auto* det_col =
      static_cast<const DetColumn*>(f.db.table->GetColumn(layout->DetColumn()).get());
  std::map<uint64_t, uint64_t> freq;
  for (size_t row = 0; row < det_col->RowCount(); ++row) {
    ++freq[det_col->Get(row)];
  }
  EXPECT_EQ(freq.size(), layout->other_values.size());
  uint64_t lo = ~0ull;
  uint64_t hi = 0;
  for (const auto& [token, count] : freq) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  // Counts equal up to the round-robin remainder.
  EXPECT_LE(hi - lo, 1u);
}

TEST(EncryptorTest, SplayedMeasureSumsMatchPlaintext) {
  const Fixture f;
  const SplasheLayout* layout = f.plan.FindSplashe("country");
  ASSERT_NE(layout, nullptr);
  const auto* plain_country =
      static_cast<const StringColumn*>(f.table->GetColumn("country").get());
  const auto* plain_salary =
      static_cast<const Int64Column*>(f.table->GetColumn("salary").get());

  // Decrypt-and-sum every splayed column; compare with the plaintext
  // per-country totals.
  auto column_sum = [&](const std::string& name) -> uint64_t {
    const Ashe ashe(f.keys.DeriveColumnKey(ColumnKeyLabel("emp", name)));
    const auto* col = static_cast<const AsheColumn*>(f.db.table->GetColumn(name).get());
    AsheCiphertext acc;
    for (size_t row = 0; row < col->RowCount(); ++row) {
      acc.value += col->Get(row);
      acc.ids.Add(col->IdOfRow(row));
    }
    return ashe.Decrypt(acc);
  };

  std::map<std::string, uint64_t> expected_sum;
  std::map<std::string, uint64_t> expected_count;
  for (size_t row = 0; row < f.table->NumRows(); ++row) {
    expected_sum[plain_country->Get(row)] += static_cast<uint64_t>(plain_salary->Get(row));
    ++expected_count[plain_country->Get(row)];
  }

  for (const std::string& v : layout->splayed_values) {
    EXPECT_EQ(column_sum(SplasheLayout::MeasureColumn("salary", v)), expected_sum[v]) << v;
    EXPECT_EQ(column_sum(layout->CountColumn(v)), expected_count[v]) << v;
  }
  // Others columns hold everything else.
  uint64_t other_sum = 0;
  uint64_t other_count = 0;
  for (const std::string& v : layout->other_values) {
    other_sum += expected_sum[v];
    other_count += expected_count[v];
  }
  EXPECT_EQ(column_sum(SplasheLayout::OthersMeasureColumn("salary")), other_sum);
  EXPECT_EQ(column_sum(layout->OthersCountColumn()), other_count);
}

TEST(EncryptorTest, DetDictionaryCoversAllTokens) {
  const Fixture f;
  const SplasheLayout* layout = f.plan.FindSplashe("country");
  const auto& dict = f.db.det_dictionaries.at(layout->DetColumn());
  const auto* det_col =
      static_cast<const DetColumn*>(f.db.table->GetColumn(layout->DetColumn()).get());
  for (size_t row = 0; row < det_col->RowCount(); ++row) {
    EXPECT_TRUE(dict.count(det_col->Get(row)));
  }
}

TEST(EncryptorTest, AsheColumnDecryptsCellwise) {
  const Fixture f;
  const Ashe ashe(f.keys.DeriveColumnKey(ColumnKeyLabel("emp", "salary#ashe")));
  const auto* enc = static_cast<const AsheColumn*>(f.db.table->GetColumn("salary#ashe").get());
  const auto* plain = static_cast<const Int64Column*>(f.table->GetColumn("salary").get());
  for (size_t row = 0; row < 50; ++row) {
    EXPECT_EQ(ashe.DecryptCell(enc->Get(row), enc->IdOfRow(row)),
              static_cast<uint64_t>(plain->Get(row)));
  }
}

TEST(EncryptorTest, PaillierBaselineTableShape) {
  const Fixture f;
  Rng rng(33);
  const Paillier paillier = Paillier::GenerateKey(rng, 128);
  const Encryptor encryptor(f.keys);
  const EncryptedDatabase base =
      encryptor.EncryptPaillierBaseline(*f.table, f.schema, f.plan, paillier, rng);
  EXPECT_TRUE(base.table->HasColumn("salary#paillier"));
  // SPLASHE degraded to DET in the baseline.
  EXPECT_TRUE(base.table->HasColumn("country#det"));
  EXPECT_EQ(base.plan.Plan("country").scheme, EncScheme::kDet);
  EXPECT_TRUE(base.plan.splashe.empty());

  // Spot-check a few cells decrypt correctly.
  const auto* col =
      static_cast<const PaillierColumn*>(base.table->GetColumn("salary#paillier").get());
  const auto* plain = static_cast<const Int64Column*>(f.table->GetColumn("salary").get());
  for (size_t row = 0; row < 10; ++row) {
    EXPECT_EQ(paillier.DecryptSigned(col->Get(row)), plain->Get(row));
  }
}

}  // namespace
}  // namespace seabed
