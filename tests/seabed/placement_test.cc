// Tests for pluggable shard placement (src/seabed/placement.h) and the
// coordinator's round-zero routing built on it: quantile partitioning and
// append assignment under kKeyRange, the planner's clustering-key range
// extraction, routed / non-routable / zero-match execution with
// QueryStats::shards_routed accounting, prepared-statement routing on bound
// params, boundary-move rebalancing, and — the PR's bugfix pin — a query
// racing a boundary move never missing rows (routing reads the pinned
// snapshot version's boundaries, never live state).
#include "src/seabed/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/seabed/planner.h"
#include "src/seabed/session.h"
#include "src/seabed/sharded_backend.h"
#include "tests/seabed/test_util.h"

namespace seabed {
namespace {

std::shared_ptr<Table> KeyTable(const std::vector<int64_t>& keys) {
  auto t = std::make_shared<Table>("emp");
  auto ts = std::make_shared<Int64Column>();
  for (const int64_t k : keys) {
    ts->Append(k);
  }
  t->AddColumn("ts", ts);
  return t;
}

// --- Placement unit tests ---------------------------------------------------

TEST(PlacementTest, KeyRangePartitionIsContiguousDisjointAndCoversAllRows) {
  // Shuffled keys with a fat run of equal values (40x the key 500).
  std::vector<int64_t> keys;
  Rng rng(17);
  for (int i = 0; i < 360; ++i) {
    keys.push_back(static_cast<int64_t>(rng.Below(1000)));
  }
  for (int i = 0; i < 40; ++i) {
    keys.push_back(500);
  }
  const auto table = KeyTable(keys);
  const Placement placement(PlacementPolicy::kKeyRange, "ts", 4);
  const auto assignment = placement.PartitionRows(*table);
  ASSERT_EQ(assignment.size(), 4u);

  // Exactly-once coverage.
  std::set<size_t> seen;
  for (const auto& rows : assignment) {
    for (const size_t r : rows) {
      EXPECT_TRUE(seen.insert(r).second) << "row " << r << " assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), keys.size());

  // Shard index order == key order, ranges disjoint, equal runs unsplit.
  const auto bounds = placement.InitialBoundaries(*table, assignment);
  int64_t prev_hi = std::numeric_limits<int64_t>::min();
  size_t shard_of_500 = 4;
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(bounds[s].occupied);
    EXPECT_GT(bounds[s].lo, prev_hi) << "shard " << s << " overlaps its left neighbor";
    EXPECT_LE(bounds[s].lo, bounds[s].hi);
    prev_hi = bounds[s].hi;
    int64_t lo = std::numeric_limits<int64_t>::max();
    int64_t hi = std::numeric_limits<int64_t>::min();
    for (const size_t r : assignment[s]) {
      lo = std::min(lo, keys[r]);
      hi = std::max(hi, keys[r]);
      if (keys[r] == 500) {
        if (shard_of_500 == 4) {
          shard_of_500 = s;
        }
        EXPECT_EQ(s, shard_of_500) << "equal-key run split across shards";
      }
    }
    EXPECT_EQ(bounds[s].lo, lo);
    EXPECT_EQ(bounds[s].hi, hi);
    // Rows within a shard keep original relative order.
    EXPECT_TRUE(std::is_sorted(assignment[s].begin(), assignment[s].end()));
  }
}

TEST(PlacementTest, HashPartitionMatchesTheMultiplicativeHashRowByRow) {
  const auto table = KeyTable(std::vector<int64_t>(100, 7));
  const Placement placement(PlacementPolicy::kHash, "", 5);
  const auto assignment = placement.PartitionRows(*table);
  for (size_t s = 0; s < 5; ++s) {
    for (const size_t r : assignment[s]) {
      EXPECT_EQ(Placement::HashShardOfRow(r, 5), s);
    }
  }
}

TEST(PlacementTest, AppendAssignmentRespectsOwnersGapsAndEdges) {
  const Placement placement(PlacementPolicy::kKeyRange, "ts", 4);
  std::vector<ShardKeyBoundary> bounds(4);
  bounds[0] = {true, 0, 9};
  bounds[1] = {true, 20, 29};
  bounds[2] = {false, 0, 0};  // empty shard owns nothing
  bounds[3] = {true, 30, 39};

  //            in s0, gap→s1, in s1, past-top→s3, below-all→s0, in s3
  const auto batch = KeyTable({5, 15, 25, 50, -5, 33});
  const auto assignment = placement.AssignAppend(*batch, /*prior_rows=*/123, bounds);
  EXPECT_EQ(assignment[0], (std::vector<size_t>{0, 4}));
  EXPECT_EQ(assignment[1], (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(assignment[2].empty());
  EXPECT_EQ(assignment[3], (std::vector<size_t>{3, 5}));
}

TEST(PlacementTest, AppendToUnoccupiedFleetCollectsOnShardZero) {
  const Placement placement(PlacementPolicy::kKeyRange, "ts", 3);
  const auto batch = KeyTable({10, -10, 0});
  const auto assignment =
      placement.AssignAppend(*batch, 0, std::vector<ShardKeyBoundary>(3));
  EXPECT_EQ(assignment[0].size(), 3u);
  EXPECT_TRUE(assignment[1].empty());
  EXPECT_TRUE(assignment[2].empty());
}

TEST(PlacementTest, RouteShardsIntersectsOccupiedBoundariesOnly) {
  std::vector<ShardKeyBoundary> bounds(4);
  bounds[0] = {true, 0, 9};
  bounds[1] = {true, 20, 29};
  bounds[2] = {false, 0, 1000};  // unoccupied: never routed, whatever lo/hi say
  bounds[3] = {true, 30, 39};

  ClusteringKeyRange mid;  // [15, 25] touches only shard 1
  mid.lo = 15;
  mid.hi = 25;
  EXPECT_EQ(Placement::RouteShards(bounds, mid),
            (std::vector<bool>{false, true, false, false}));

  ClusteringKeyRange all;  // unconstrained default covers every occupied shard
  EXPECT_EQ(Placement::RouteShards(bounds, all),
            (std::vector<bool>{true, true, false, true}));

  ClusteringKeyRange none;  // provably-empty interval activates nothing
  none.lo = 100;
  none.hi = 50;
  EXPECT_EQ(Placement::RouteShards(bounds, none),
            (std::vector<bool>{false, false, false, false}));

  ClusteringKeyRange flagged;
  flagged.empty = true;
  EXPECT_EQ(Placement::RouteShards(bounds, flagged),
            (std::vector<bool>{false, false, false, false}));
}

// --- Planner range extraction ----------------------------------------------

TEST(ClusteringKeyRangeTest, ExtractsClosedIntervalsFromComparisons) {
  Query q;
  q.table = "emp";
  q.Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{10});
  q.Where("ts", CmpOp::kLt, int64_t{20});
  const auto range = ExtractClusteringKeyRange(q, "ts");
  ASSERT_TRUE(range.has_value());
  EXPECT_FALSE(range->empty);
  EXPECT_EQ(range->lo, 10);
  EXPECT_EQ(range->hi, 19);  // kLt tightens to a closed bound

  Query eq;
  eq.table = "emp";
  eq.Count("n");
  eq.Where("ts", CmpOp::kEq, int64_t{42});
  const auto point = ExtractClusteringKeyRange(eq, "ts");
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(point->lo, 42);
  EXPECT_EQ(point->hi, 42);
}

TEST(ClusteringKeyRangeTest, ContradictionIsEmptyNotMissing) {
  Query q;
  q.table = "emp";
  q.Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{100});
  q.Where("ts", CmpOp::kLe, int64_t{50});
  const auto range = ExtractClusteringKeyRange(q, "ts");
  ASSERT_TRUE(range.has_value());
  EXPECT_TRUE(range->empty);
}

TEST(ClusteringKeyRangeTest, NonRoutableShapesReturnNullopt) {
  // No predicate on the clustering column at all.
  Query none;
  none.table = "emp";
  none.Count("n");
  none.Where("store", CmpOp::kEq, std::string("s1"));
  EXPECT_FALSE(ExtractClusteringKeyRange(none, "ts").has_value());

  // kNe punches a hole but doesn't bound the hull.
  Query ne;
  ne.table = "emp";
  ne.Count("n");
  ne.Where("ts", CmpOp::kNe, int64_t{5});
  EXPECT_FALSE(ExtractClusteringKeyRange(ne, "ts").has_value());

  // A still-unbound placeholder slot must be skipped (conservative): the
  // shape alone says nothing about the bound value.
  Query shape;
  shape.table = "emp";
  shape.Count("n");
  shape.WhereParam("ts", CmpOp::kGe);
  EXPECT_FALSE(ExtractClusteringKeyRange(shape, "ts").has_value());

  // ...but the bound query routes.
  const Query bound = shape.BindParams(std::vector<Value>{int64_t{30}});
  const auto range = ExtractClusteringKeyRange(bound, "ts");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->lo, 30);

  // No clustering column configured (hash tables).
  EXPECT_FALSE(ExtractClusteringKeyRange(bound, "").has_value());
}

// --- End-to-end routing on the sharded backend ------------------------------

// 1200 time-ordered rows: ts == row index, so a 4-shard key-range fleet owns
// [0,299], [300,599], [600,899], [900,1199] and a narrow time slice routes
// to exactly one shard.
class PlacementRoutingTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;
  static constexpr int kRows = 1200;

  PlacementRoutingTest()
      : plain_(Options(BackendKind::kPlain, 1, false)),
        hashed_(Options(BackendKind::kShardedSeabed, kShards, false)),
        ranged_(Options(BackendKind::kShardedSeabed, kShards, true)) {
    schema_.table_name = "emp";
    schema_.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});

    table_ = std::make_shared<Table>("emp");
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    Rng rng(23);
    const char* stores[] = {"s1", "s2", "s3"};
    for (int i = 0; i < kRows; ++i) {
      store_col->Append(stores[rng.Below(3)]);
      ts_col->Append(static_cast<int64_t>(i));
      salary_col->Append(rng.Range(0, 100000));
    }
    table_->AddColumn("store", store_col);
    table_->AddColumn("ts", ts_col);
    table_->AddColumn("salary", salary_col);

    // Every session owns its plaintext: appends grow the attached table in
    // place, so sharing one shared_ptr across sessions would double-count.
    for (Session* s : {&plain_, &hashed_, &ranged_}) {
      s->Attach(CloneTable(*table_), schema_, Samples());
    }
  }

  static SessionOptions Options(BackendKind backend, size_t shards, bool key_range) {
    SessionOptions options;
    options.backend = backend;
    options.shards = shards;
    options.planner.expected_rows = kRows;
    options.key_seed = 77;
    options.cluster.num_workers = 4;
    options.cluster.job_overhead_seconds = 0;
    options.cluster.task_overhead_seconds = 0;
    if (key_range) {
      options.shards_placement.policy = PlacementPolicy::kKeyRange;
      options.shards_placement.clustering_columns["emp"] = "ts";
    }
    return options;
  }

  static std::vector<Query> Samples() {
    std::vector<Query> samples;
    Query q;
    q.table = "emp";
    q.Sum("salary").Count().Min("ts").Max("ts");
    q.Where("ts", CmpOp::kGe, int64_t{0});
    q.GroupBy("store");
    samples.push_back(q);
    return samples;
  }

  static Query SliceQuery(int64_t lo, int64_t hi) {
    Query q;
    q.table = "emp";
    q.Sum("salary", "total").Count("n");
    q.Where("ts", CmpOp::kGe, lo);
    q.Where("ts", CmpOp::kLe, hi);
    return q;
  }

  Session plain_;
  Session hashed_;
  Session ranged_;
  PlainSchema schema_;
  std::shared_ptr<Table> table_;
};

TEST_F(PlacementRoutingTest, KeyRangeAttachCoversEveryRowAcrossShards) {
  auto& backend = static_cast<ShardedSeabedBackend&>(ranged_.executor());
  const std::vector<size_t> counts = backend.ShardRowCounts("emp");
  size_t total = 0;
  for (const size_t c : counts) {
    EXPECT_GT(c, 0u);
    total += c;
  }
  EXPECT_EQ(total, static_cast<size_t>(kRows));
  // Quantiles over distinct keys are near-equal.
  EXPECT_EQ(*std::max_element(counts.begin(), counts.end()), kRows / kShards);

  // Answers match plain everywhere, with stats invariants.
  const Query q = SliceQuery(100, 200);
  const auto reference = RowsAsStrings(plain_.Execute(q, nullptr));
  ExpectProbeStatsInvariants(ranged_, q, reference);
  ExpectProbeStatsInvariants(hashed_, q, reference);
}

TEST_F(PlacementRoutingTest, SelectiveSliceRoutesToAShardSubset) {
  const Query q = SliceQuery(100, 200);  // inside shard 0's [0, 299]
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(q, &stats)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
  EXPECT_EQ(stats.shards_total, kShards);
  EXPECT_EQ(stats.shards_routed, 1u);
  EXPECT_EQ(stats.rows_touched, 101u);

  // A slice spanning a boundary routes to both owners, nothing else.
  const Query wide = SliceQuery(250, 350);
  QueryStats wide_stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(wide, &wide_stats)),
            RowsAsStrings(plain_.Execute(wide, nullptr)));
  EXPECT_EQ(wide_stats.shards_routed, 2u);
}

TEST_F(PlacementRoutingTest, HashSessionsReportTheFullFleet) {
  const Query q = SliceQuery(100, 200);
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(hashed_.Execute(q, &stats)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
  EXPECT_EQ(stats.shards_total, kShards);
  EXPECT_EQ(stats.shards_routed, kShards);  // hash placement is not routable
}

TEST_F(PlacementRoutingTest, NonRoutableQueryFansOutEverywhere) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.Where("store", CmpOp::kEq, std::string("s2"));
  q.GroupBy("store");
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(q, &stats)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
  EXPECT_EQ(stats.shards_routed, stats.shards_total);
}

TEST_F(PlacementRoutingTest, ZeroOwnerSliceSkipsBothRounds) {
  // Past every shard's hi — routing proves no owner before any fan-out, even
  // on the two-round path: no probe round, no rows, still the right answer.
  Query q = SliceQuery(5000, 6000);
  q.needs_two_round_trips = true;
  const auto reference = RowsAsStrings(plain_.Execute(q, nullptr));
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(q, &stats)), reference);
  EXPECT_EQ(stats.shards_routed, 0u);
  EXPECT_FALSE(stats.probe_used);
  EXPECT_EQ(stats.rows_touched, 0u);
  ExpectProbeStatsInvariants(ranged_, q, reference);

  // A contradictory conjunction routes to zero shards the same way.
  Query contradiction = SliceQuery(400, 300);
  QueryStats cstats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(contradiction, &cstats)),
            RowsAsStrings(plain_.Execute(contradiction, nullptr)));
  EXPECT_EQ(cstats.shards_routed, 0u);
}

TEST_F(PlacementRoutingTest, PreparedExecutionRoutesOnBoundParams) {
  Query shape;
  shape.table = "emp";
  shape.Sum("salary", "total").Count("n");
  shape.WhereParam("ts", CmpOp::kGe);
  shape.WhereParam("ts", CmpOp::kLe);

  const std::vector<Value> params = {int64_t{700}, int64_t{800}};  // shard 2
  const auto reference = RowsAsStrings(plain_.Execute(shape.BindParams(params), nullptr));
  ExpectPreparedStatsInvariants(ranged_, shape, params, reference);

  const PreparedQuery prepared = ranged_.Prepare(shape);
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(prepared, params, &stats)), reference);
  EXPECT_TRUE(stats.prepared);
  EXPECT_EQ(stats.shards_total, kShards);
  EXPECT_LT(stats.shards_routed, stats.shards_total);
  EXPECT_EQ(stats.shards_routed, 1u);

  // Different binding, different owner subset — the plan is shared, the
  // routing is per-execution.
  const std::vector<Value> wide = {int64_t{0}, int64_t{1199}};
  QueryStats wide_stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(prepared, wide, &wide_stats)),
            RowsAsStrings(plain_.Execute(shape.BindParams(wide), nullptr)));
  EXPECT_EQ(wide_stats.shards_routed, kShards);
}

TEST_F(PlacementRoutingTest, AppendsLandInOwningRangesAndStayRoutable) {
  // In-range, gap-free: each row joins its owner; out-of-range extends the
  // top shard. Either way routed queries keep matching plain.
  auto batch = std::make_shared<Table>("emp");
  auto store_col = std::make_shared<StringColumn>();
  auto ts_col = std::make_shared<Int64Column>();
  auto salary_col = std::make_shared<Int64Column>();
  Rng rng(41);
  for (int i = 0; i < 300; ++i) {
    store_col->Append("s1");
    // Alternate between a slice of shard 1's range and brand-new keys past
    // the fleet's top.
    ts_col->Append(i % 2 == 0 ? static_cast<int64_t>(400 + rng.Below(100))
                              : static_cast<int64_t>(2000 + i));
    salary_col->Append(rng.Range(0, 100000));
  }
  batch->AddColumn("store", store_col);
  batch->AddColumn("ts", ts_col);
  batch->AddColumn("salary", salary_col);
  plain_.Append("emp", *batch);
  ranged_.Append("emp", *batch);

  const Query mid = SliceQuery(400, 499);
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(mid, &stats)),
            RowsAsStrings(plain_.Execute(mid, nullptr)));
  EXPECT_LT(stats.shards_routed, stats.shards_total);

  const Query top = SliceQuery(2000, 3000);
  QueryStats top_stats;
  EXPECT_EQ(RowsAsStrings(ranged_.Execute(top, &top_stats)),
            RowsAsStrings(plain_.Execute(top, nullptr)));
  EXPECT_LT(top_stats.shards_routed, top_stats.shards_total);

  // Disjoint identifier spaces survive value-aware appends (multi-destination
  // batches split across shards).
  auto& backend = static_cast<ShardedSeabedBackend&>(ranged_.executor());
  std::set<uint64_t> seen_ids;
  for (size_t s = 0; s < kShards; ++s) {
    const Table& part = *backend.shard_database("emp", s).table;
    const auto* col = static_cast<const AsheColumn*>(part.GetColumn("salary#ashe").get());
    for (size_t row = 0; row < col->RowCount(); ++row) {
      EXPECT_TRUE(seen_ids.insert(col->IdOfRow(row)).second);
    }
  }
}

// Boundary-move rebalancing: a hot-tail (time-ordered) append stream piles
// rows onto the top shard; the key-range arm must shed boundary segments to
// index-neighbors, keep ranges contiguous/routable, keep every answer equal
// to plain, and keep ASHE identifier spaces disjoint through re-encryption.
TEST_F(PlacementRoutingTest, HotTailRebalanceMovesBoundariesAndStaysCorrect) {
  SessionOptions options = Options(BackendKind::kShardedSeabed, kShards, true);
  options.shards_rebalance.enabled = true;
  options.shards_rebalance.max_skew_ratio = 1.3;
  options.shards_rebalance.row_group_size = 64;
  Session rebalanced(std::move(options));
  Session reference(Options(BackendKind::kPlain, 1, false));
  for (Session* s : {&rebalanced, &reference}) {
    s->Attach(CloneTable(*table_), schema_, Samples());
  }

  int64_t clock = kRows;
  Rng rng(67);
  size_t total = kRows;
  for (int round = 0; round < 8; ++round) {
    auto batch = std::make_shared<Table>("emp");
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    for (int i = 0; i < 200; ++i) {
      store_col->Append("s1");
      ts_col->Append(clock++);
      salary_col->Append(rng.Range(0, 100000));
    }
    batch->AddColumn("store", store_col);
    batch->AddColumn("ts", ts_col);
    batch->AddColumn("salary", salary_col);
    rebalanced.Append("emp", *batch);
    reference.Append("emp", *batch);
    total += 200;
  }

  const std::optional<RebalanceStats> stats = rebalanced.rebalance_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->rebalances, 0u);
  EXPECT_GT(stats->rows_moved, 0u);
  EXPECT_GT(stats->rows_reencrypted, 0u);

  auto& backend = static_cast<ShardedSeabedBackend&>(rebalanced.executor());
  const std::vector<size_t> counts = backend.ShardRowCounts("emp");
  const size_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_LE(max_count, static_cast<size_t>(1.3 * static_cast<double>(total) / kShards) + 64);

  // Identifier spaces stay disjoint through boundary-segment re-encryption.
  std::set<uint64_t> seen_ids;
  for (size_t s = 0; s < kShards; ++s) {
    const Table& part = *backend.shard_database("emp", s).table;
    const auto* col = static_cast<const AsheColumn*>(part.GetColumn("salary#ashe").get());
    for (size_t row = 0; row < col->RowCount(); ++row) {
      EXPECT_TRUE(seen_ids.insert(col->IdOfRow(row)).second)
          << "ASHE id reused in shard " << s;
    }
  }

  // Routed, boundary-spanning, non-routable and two-round queries all agree
  // with plain after the moves, and narrow slices still prune the fleet.
  std::vector<Query> queries = {SliceQuery(100, 200), SliceQuery(1100, 1400),
                                SliceQuery(0, clock)};
  {
    Query g;
    g.table = "emp";
    g.Sum("salary", "total").Count("n");
    g.GroupBy("store");
    queries.push_back(g);
    Query two = SliceQuery(1500, 1600);
    two.needs_two_round_trips = true;
    queries.push_back(two);
  }
  for (const Query& q : queries) {
    const auto expected = RowsAsStrings(reference.Execute(q, nullptr));
    ExpectProbeStatsInvariants(rebalanced, q, expected);
  }
  QueryStats narrow;
  rebalanced.Execute(SliceQuery(100, 200), &narrow);
  EXPECT_LT(narrow.shards_routed, narrow.shards_total);
}

// Bugfix pin: a routed query racing a boundary move must never miss rows.
// Routing reads the SAME pinned version's boundaries the scan runs on, so a
// fixed time slice of the seed data — whose rows boundary moves keep
// migrating between shards — always returns exactly the seed answer, while
// an unbounded count always lands on a legal append-prefix value.
TEST(PlacementConcurrencyTest, RoutingRacingBoundaryMovesNeverMissesRows) {
  PlainSchema schema;
  schema.table_name = "emp";
  schema.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});

  auto seed_table = std::make_shared<Table>("emp");
  {
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    Rng rng(29);
    for (int i = 0; i < 900; ++i) {
      store_col->Append("s1");
      ts_col->Append(static_cast<int64_t>(i));
      salary_col->Append(rng.Range(0, 100000));
    }
    seed_table->AddColumn("store", store_col);
    seed_table->AddColumn("ts", ts_col);
    seed_table->AddColumn("salary", salary_col);
  }

  SessionOptions options;
  options.backend = BackendKind::kShardedSeabed;
  options.shards = 3;
  options.planner.expected_rows = 900;
  options.key_seed = 13;
  options.cluster.num_workers = 2;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.shards_placement.policy = PlacementPolicy::kKeyRange;
  options.shards_placement.clustering_columns["emp"] = "ts";
  options.shards_rebalance.enabled = true;  // boundary moves join the race
  options.shards_rebalance.max_skew_ratio = 1.2;
  options.shards_rebalance.row_group_size = 64;
  Session sharded(std::move(options));

  Query sample;
  sample.table = "emp";
  sample.Sum("salary").Count().Min("ts").Max("ts");
  sample.Where("ts", CmpOp::kGe, int64_t{0});
  sample.GroupBy("store");
  std::vector<Query> samples = {sample};
  sharded.Attach(seed_table, schema, samples);

  // The queried slice [200, 400] sits in the seed data; every appended key
  // is >= 900, so the slice's answer never changes — but its OWNERS do, as
  // hot-tail rebalances shunt seed rows between shards mid-query.
  Query slice;
  slice.table = "emp";
  slice.Sum("salary", "total").Count("n");
  slice.Where("ts", CmpOp::kGe, int64_t{200});
  slice.Where("ts", CmpOp::kLe, int64_t{400});
  QueryStats fixed_stats;
  const auto slice_reference = RowsAsStrings(sharded.Execute(slice, &fixed_stats));
  EXPECT_LT(fixed_stats.shards_routed, fixed_stats.shards_total);

  Query count_all;
  count_all.table = "emp";
  count_all.Count("n");

  constexpr int kAppends = 24;
  constexpr size_t kBatchRows = 150;
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      QueryStats stats;
      if (RowsAsStrings(sharded.Execute(slice, &stats)) != slice_reference) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      if (stats.shards_routed > stats.shards_total) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      const auto rows = RowsAsStrings(sharded.Execute(count_all, nullptr));
      // A full count must equal 900 + k*150 for some completed prefix k.
      bool legal = false;
      for (int k = 0; k <= kAppends && !legal; ++k) {
        legal = rows == std::vector<std::string>{
                            std::to_string(900 + k * static_cast<int>(kBatchRows)) + "|"};
      }
      if (!legal) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  int64_t clock = 900;
  Rng rng(71);
  for (int i = 0; i < kAppends; ++i) {
    auto batch = std::make_shared<Table>("emp");
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    for (size_t r = 0; r < kBatchRows; ++r) {
      store_col->Append("s1");
      ts_col->Append(clock++);
      salary_col->Append(rng.Range(0, 100000));
    }
    batch->AddColumn("store", store_col);
    batch->AddColumn("ts", ts_col);
    batch->AddColumn("salary", salary_col);
    sharded.Append("emp", *batch);
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  // The race was real: boundary moves actually fired while we queried.
  ASSERT_TRUE(sharded.rebalance_stats().has_value());
  EXPECT_GT(sharded.rebalance_stats()->rebalances, 0u);

  // And the dust-settled slice still routes to a strict subset.
  QueryStats final_stats;
  EXPECT_EQ(RowsAsStrings(sharded.Execute(slice, &final_stats)), slice_reference);
  EXPECT_LT(final_stats.shards_routed, final_stats.shards_total);
}

}  // namespace
}  // namespace seabed
