#include "src/seabed/planner.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

PlainSchema RetailSchema() {
  PlainSchema schema;
  schema.table_name = "retail";
  ValueDistribution gender;
  gender.values = {"male", "female"};
  gender.frequencies = {0.5, 0.5};
  ValueDistribution country;
  country.values = {"usa", "canada", "india", "chile"};
  country.frequencies = {0.45, 0.45, 0.06, 0.04};
  schema.columns.push_back({"gender", ColumnType::kString, true, gender});
  schema.columns.push_back({"country", ColumnType::kString, true, country});
  schema.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"store", ColumnType::kString, false, std::nullopt});
  return schema;
}

std::vector<Query> RetailQueries() {
  std::vector<Query> queries;
  Query q1;
  q1.table = "retail";
  q1.Sum("salary").Where("gender", CmpOp::kEq, std::string("male"));
  queries.push_back(q1);
  Query q2;
  q2.table = "retail";
  q2.Avg("salary").Where("country", CmpOp::kEq, std::string("india"));
  queries.push_back(q2);
  Query q3;
  q3.table = "retail";
  q3.Count().Where("ts", CmpOp::kGe, int64_t{1000});
  queries.push_back(q3);
  return queries;
}

TEST(AnalyzeUsageTest, RolesDetected) {
  const auto usage = AnalyzeUsage(RetailSchema(), RetailQueries());
  EXPECT_TRUE(usage.at("salary").IsMeasure());
  EXPECT_FALSE(usage.at("salary").IsDimension());
  EXPECT_TRUE(usage.at("gender").eq_filter);
  EXPECT_FALSE(usage.at("gender").range_filter);
  EXPECT_TRUE(usage.at("ts").range_filter);
  EXPECT_FALSE(usage.at("store").IsMeasure());
}

TEST(AnalyzeUsageTest, QuadraticAndMinMax) {
  PlainSchema schema = RetailSchema();
  Query q;
  q.table = "retail";
  q.Variance("salary").Max("ts");
  const auto usage = AnalyzeUsage(schema, {q});
  EXPECT_TRUE(usage.at("salary").quadratic_agg);
  EXPECT_TRUE(usage.at("ts").minmax_agg);
}

TEST(AnalyzeUsageTest, JoinKeysDetected) {
  PlainSchema schema = RetailSchema();
  Query q;
  q.table = "retail";
  q.Sum("salary");
  q.join = Join{"other", "store", "right:store_id"};
  const auto usage = AnalyzeUsage(schema, {q});
  EXPECT_TRUE(usage.at("store").join_key);
}

TEST(PlannerTest, MeasuresGetAshe) {
  const EncryptionPlan plan = PlanEncryption(RetailSchema(), RetailQueries());
  EXPECT_EQ(plan.Plan("salary").scheme, EncScheme::kAshe);
  EXPECT_FALSE(plan.Plan("salary").needs_square);
}

TEST(PlannerTest, QuadraticAggAddsSquaredColumn) {
  PlainSchema schema = RetailSchema();
  Query q;
  q.table = "retail";
  q.Variance("salary");
  const EncryptionPlan plan = PlanEncryption(schema, {q});
  EXPECT_TRUE(plan.Plan("salary").needs_square);
}

TEST(PlannerTest, EqualityDimsGetSplashe) {
  const EncryptionPlan plan = PlanEncryption(RetailSchema(), RetailQueries());
  EXPECT_EQ(plan.Plan("gender").scheme, EncScheme::kSplasheEnhanced);
  EXPECT_EQ(plan.Plan("country").scheme, EncScheme::kSplasheEnhanced);
  EXPECT_NE(plan.FindSplashe("gender"), nullptr);
  EXPECT_NE(plan.FindSplashe("country"), nullptr);
}

TEST(PlannerTest, RangeDimsGetOpe) {
  const EncryptionPlan plan = PlanEncryption(RetailSchema(), RetailQueries());
  EXPECT_EQ(plan.Plan("ts").scheme, EncScheme::kOpe);
  // The fallback is surfaced as a warning.
  bool warned = false;
  for (const auto& w : plan.warnings) {
    warned |= w.find("ts") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(PlannerTest, NonSensitiveStaysPlain) {
  const EncryptionPlan plan = PlanEncryption(RetailSchema(), RetailQueries());
  EXPECT_EQ(plan.Plan("store").scheme, EncScheme::kPlain);
}

TEST(PlannerTest, JoinKeyFallsBackToDet) {
  PlainSchema schema = RetailSchema();
  std::vector<Query> queries = RetailQueries();
  Query join_query;
  join_query.table = "retail";
  join_query.Sum("salary");
  join_query.join = Join{"other", "gender", "right:g"};
  queries.push_back(join_query);
  const EncryptionPlan plan = PlanEncryption(schema, queries);
  EXPECT_EQ(plan.Plan("gender").scheme, EncScheme::kDet);
  EXPECT_EQ(plan.FindSplashe("gender"), nullptr);
}

TEST(PlannerTest, GroupByDimFallsBackToDet) {
  PlainSchema schema = RetailSchema();
  Query q;
  q.table = "retail";
  q.Sum("salary").GroupBy("country");
  const EncryptionPlan plan = PlanEncryption(schema, {q});
  EXPECT_EQ(plan.Plan("country").scheme, EncScheme::kDet);
}

TEST(PlannerTest, CoOccurringMeasuresAreSplayed) {
  const EncryptionPlan plan = PlanEncryption(RetailSchema(), RetailQueries());
  const SplasheLayout* gender = plan.FindSplashe("gender");
  ASSERT_NE(gender, nullptr);
  ASSERT_EQ(gender->splayed_measures.size(), 1u);
  EXPECT_EQ(gender->splayed_measures[0], "salary");
}

TEST(PlannerTest, StorageBudgetPrioritizesLowCardinality) {
  // With a tight budget only the lowest-cardinality dimension (gender, d=2)
  // fits; country falls back to DET with a warning.
  PlannerOptions options;
  options.max_storage_expansion = 1.8;
  const EncryptionPlan plan = PlanEncryption(RetailSchema(), RetailQueries(), options);
  EXPECT_EQ(plan.Plan("gender").scheme, EncScheme::kSplasheEnhanced);
  EXPECT_EQ(plan.Plan("country").scheme, EncScheme::kDet);
}

TEST(PlannerTest, UnlimitedBudgetSplaysAll) {
  const EncryptionPlan plan = PlanEncryption(RetailSchema(), RetailQueries());
  EXPECT_EQ(plan.splashe.size(), 2u);
}

TEST(PlannerTest, SensitiveUnqueriedColumnGetsAshe) {
  PlainSchema schema;
  schema.table_name = "t";
  schema.columns.push_back({"secret", ColumnType::kInt64, true, std::nullopt});
  const EncryptionPlan plan = PlanEncryption(schema, {});
  EXPECT_EQ(plan.Plan("secret").scheme, EncScheme::kAshe);
}

TEST(PlannerTest, BothRoleColumnGetsAsheAndOpe) {
  PlainSchema schema;
  schema.table_name = "t";
  schema.columns.push_back({"rank", ColumnType::kInt64, true, std::nullopt});
  Query q;
  q.table = "t";
  q.Avg("rank").Max("rank");
  q.Where("rank", CmpOp::kGt, int64_t{10});
  const EncryptionPlan plan = PlanEncryption(schema, {q});
  const ColumnPlan& cp = plan.Plan("rank");
  EXPECT_EQ(cp.scheme, EncScheme::kOpe);
  EXPECT_TRUE(cp.add_ashe);
  EXPECT_TRUE(cp.add_ope);
}

}  // namespace
}  // namespace seabed
