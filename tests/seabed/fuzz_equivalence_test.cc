// Randomized cross-backend equivalence suite: every execution backend the
// Session facade offers must return identical rows for the same query. Each
// parameterized instance builds a random fact table (plus a random joinable
// dimension table) and replays ~20 random queries — filters, GROUP BY, JOIN,
// SUM/COUNT/AVG/MIN/MAX/VARIANCE — through
//
//   kPlain            (the reference semantics),
//   kSeabed           (ASHE/SPLASHE/DET/ORE pipeline),
//   kPaillier         (CryptDB/Monomi baseline; variance is out of its model),
//   kShardedSeabed    at shard counts {1, 2, 4, 7},
//   kCachingSeabed    over both a single-server and a sharded (3) inner.
//
// PLACEMENT AXIS: placement is fixed at Attach, so the policies rotate as
// extra sessions rather than per trial: the sharded fleets at 4 and 7 shards
// and a caching-over-sharded stack run AGAIN under kKeyRange (clustering on
// the fact table's `ts`; the dimension table keeps hash placement — mixed
// catalogs are the common case). Every trial's ts filters route those
// sessions to shard subsets, and the same rows must come back regardless of
// which shards were fanned out to.
//
// Ten seeds x ~20 trials ≈ 200 random queries per full run. This is the
// correctness argument for the fan-out/merge layer: coordinator aggregation
// must be indistinguishable from sequential execution (merge-at-coordinator
// equivalence, in the distributed-systems framing).
//
// The caching backends run every query TWICE — cold then warm — and both
// answers must match kPlain; random appends to the fact and dimension
// tables are interleaved between trials (every backend gets the same
// batch), so a cache serving a stale pre-append result, or a plan cache
// serving a mistranslation, shows up as a row mismatch here.
//
// PREPARED AXIS: each trial additionally re-issues its query through
// Session::Prepare + bound Execute, with a random subset of the filter
// literals turned into placeholder slots — the translate-once/bind-per-call
// path (and its SPLASHE bind-then-ad-hoc fallback) must byte-match the
// ad-hoc rows on every backend.
//
// PROBE AXIS: the Seabed-pipeline backends additionally replay every query
// at probe mode off, auto and forced (src/seabed/probe.h) — the two-round
// row-group pruning (kSeabed) and the forced shard-level probe
// (kShardedSeabed) must be answer-invariant. The caching backends instead
// rotate the probe mode per trial BEFORE the cold run (a warm repeat is
// answered client-side and never reaches the inner backend). Execute gives
// appends no seam between round one and round two of a single call, so the
// adversarial interleaving is append-between-trials: summaries built by
// pre-append probes must not leak into post-append answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/seabed/scan_kernels.h"
#include "src/seabed/service.h"
#include "src/seabed/session.h"
#include "src/seabed/sharded_backend.h"
#include "src/workload/synthetic.h"

namespace seabed {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 4, 7};

std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool HasVariance(const Query& q) {
  for (const Aggregate& agg : q.aggregates) {
    if (agg.func == AggFunc::kVariance || agg.func == AggFunc::kStddev) {
      return true;
    }
  }
  return false;
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, RandomQueriesAgreeAcrossAllBackends) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  // --- random fact table ------------------------------------------------------
  const size_t rows = 300 + rng.Below(600);
  const uint64_t dim_card = 3 + rng.Below(5);
  const uint64_t grp_card = 2 + rng.Below(4);

  // --- random dimension (join) table ------------------------------------------
  const size_t dim_rows = 50 + rng.Below(100);
  const uint64_t key_card = 30 + rng.Below(40);  // < dim_rows: duplicate keys

  auto table = std::make_shared<Table>("fuzz");
  auto dim = std::make_shared<StringColumn>();
  auto grp = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto m1 = std::make_shared<Int64Column>();
  auto m2 = std::make_shared<Int64Column>();
  auto fk = std::make_shared<Int64Column>();

  // Skewed dimension values: value k with weight ~ 1/(k+1).
  ValueDistribution dist;
  double total_weight = 0;
  for (uint64_t k = 0; k < dim_card; ++k) {
    dist.values.push_back("v" + std::to_string(k));
    dist.frequencies.push_back(1.0 / static_cast<double>(k + 1));
    total_weight += dist.frequencies.back();
  }
  for (auto& f : dist.frequencies) {
    f /= total_weight;
  }
  const ZipfSampler dim_sampler(dim_card, 1.0);
  for (size_t i = 0; i < rows; ++i) {
    dim->Append("v" + std::to_string(dim_sampler.Sample(rng)));
    grp->Append("g" + std::to_string(rng.Below(grp_card)));
    ts->Append(static_cast<int64_t>(rng.Below(100)));
    m1->Append(rng.Range(-50, 1000));
    m2->Append(rng.Range(0, 100));
    // ~1/9 of the foreign keys dangle (no dimension row matches).
    fk->Append(static_cast<int64_t>(rng.Below(key_card + key_card / 8)));
  }
  table->AddColumn("dim", dim);
  table->AddColumn("grp", grp);
  table->AddColumn("ts", ts);
  table->AddColumn("m1", m1);
  table->AddColumn("m2", m2);
  table->AddColumn("fk", fk);

  PlainSchema schema;
  schema.table_name = "fuzz";
  schema.columns.push_back({"dim", ColumnType::kString, true, dist});
  schema.columns.push_back({"grp", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"m1", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"m2", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"fk", ColumnType::kInt64, true, std::nullopt});

  auto dim_table = std::make_shared<Table>("dimt");
  auto key = std::make_shared<Int64Column>();
  auto score = std::make_shared<Int64Column>();
  auto cat = std::make_shared<StringColumn>();
  for (size_t i = 0; i < dim_rows; ++i) {
    key->Append(static_cast<int64_t>(rng.Below(key_card)));
    score->Append(rng.Range(-20, 500));
    cat->Append("c" + std::to_string(rng.Below(3)));
  }
  dim_table->AddColumn("key", key);
  dim_table->AddColumn("score", score);
  dim_table->AddColumn("cat", cat);

  PlainSchema dim_schema;
  dim_schema.table_name = "dimt";
  dim_schema.columns.push_back({"key", ColumnType::kInt64, true, std::nullopt});
  dim_schema.columns.push_back({"score", ColumnType::kInt64, true, std::nullopt});
  dim_schema.columns.push_back({"cat", ColumnType::kString, false, std::nullopt});

  // --- planner samples --------------------------------------------------------
  std::vector<Query> samples;
  {
    // Additive aggregates + the dim filter (SPLASHE-compatible)...
    Query q;
    q.table = "fuzz";
    q.Sum("m1").Sum("m2").Count().Avg("m1");
    q.Where("dim", CmpOp::kEq, std::string("v0"));
    q.GroupBy("grp");
    samples.push_back(q);
    // ...the non-additive shapes in separate queries, so the planner keeps
    // SPLASHE for `dim`...
    Query q2;
    q2.table = "fuzz";
    q2.Variance("m1").Variance("m2").Min("ts").Max("ts");
    q2.Where("ts", CmpOp::kGe, int64_t{0});
    samples.push_back(q2);
    // ...and a join so `fk` gets a DET column.
    Query q3;
    q3.table = "fuzz";
    q3.Sum("m1");
    q3.join = Join{"dimt", "fk", "right:key"};
    samples.push_back(q3);
  }
  std::vector<Query> dim_samples;
  {
    Query q;
    q.table = "dimt";
    q.Sum("score").Avg("score");
    q.join = Join{"fuzz", "key", "right:fk"};
    dim_samples.push_back(q);
  }

  // --- one session per backend ------------------------------------------------
  auto options_for = [&](BackendKind backend, size_t shards) {
    SessionOptions options;
    options.backend = backend;
    options.shards = shards;
    options.planner.expected_rows = rows;
    options.paillier.modulus_bits = 256;
    options.key_seed = seed * 31 + 7;
    options.cluster.num_workers = 1 + rng.Below(6);
    options.cluster.job_overhead_seconds = 0;
    options.cluster.task_overhead_seconds = 0;
    return options;
  };

  struct Backend {
    std::string label;
    std::unique_ptr<Session> session;
    bool supports_variance = true;
    bool honors_translator_options = false;
    bool caching = false;       // run twice: cold + warm must both match kPlain
    bool probe_axis = false;    // replay at probe off/auto/forced
  };
  std::vector<Backend> backends;
  backends.push_back({"plain", std::make_unique<Session>(options_for(BackendKind::kPlain, 1)),
                      true, false, false, false});
  backends.push_back({"seabed", std::make_unique<Session>(options_for(BackendKind::kSeabed, 1)),
                      true, true, false, true});
  backends.push_back(
      {"paillier", std::make_unique<Session>(options_for(BackendKind::kPaillier, 1)),
       /*supports_variance=*/false, false, false, false});
  auto key_range = [](SessionOptions options) {
    options.shards_placement.policy = PlacementPolicy::kKeyRange;
    options.shards_placement.clustering_columns["fuzz"] = "ts";
    return options;
  };
  for (const size_t shards : kShardCounts) {
    backends.push_back({"sharded-" + std::to_string(shards),
                        std::make_unique<Session>(options_for(BackendKind::kShardedSeabed, shards)),
                        true, true, false, true});
    if (shards >= 4) {
      backends.push_back(
          {"sharded-" + std::to_string(shards) + "-keyrange",
           std::make_unique<Session>(key_range(options_for(BackendKind::kShardedSeabed, shards))),
           true, true, false, true});
    }
  }
  {
    SessionOptions copts = options_for(BackendKind::kCachingSeabed, 1);
    copts.cache.inner = BackendKind::kSeabed;
    backends.push_back(
        {"caching", std::make_unique<Session>(std::move(copts)), true, true, true, true});
  }
  {
    SessionOptions copts = options_for(BackendKind::kCachingSeabed, 3);
    copts.cache.inner = BackendKind::kShardedSeabed;
    backends.push_back(
        {"caching-sharded-3", std::make_unique<Session>(std::move(copts)), true, true, true, true});
  }
  {
    SessionOptions copts = key_range(options_for(BackendKind::kCachingSeabed, 3));
    copts.cache.inner = BackendKind::kShardedSeabed;
    backends.push_back({"caching-sharded-3-keyrange", std::make_unique<Session>(std::move(copts)),
                        true, true, true, true});
  }
  for (Backend& b : backends) {
    // Every session owns its tables: the append rounds below grow them.
    b.session->Attach(CloneTable(*table), schema, samples);
    b.session->Attach(CloneTable(*dim_table), dim_schema, dim_samples);
  }

  // --- random append batches --------------------------------------------------
  auto make_fact_batch = [&](size_t n) {
    auto batch = std::make_shared<Table>("fuzz");
    auto bdim = std::make_shared<StringColumn>();
    auto bgrp = std::make_shared<StringColumn>();
    auto bts = std::make_shared<Int64Column>();
    auto bm1 = std::make_shared<Int64Column>();
    auto bm2 = std::make_shared<Int64Column>();
    auto bfk = std::make_shared<Int64Column>();
    for (size_t i = 0; i < n; ++i) {
      bdim->Append("v" + std::to_string(dim_sampler.Sample(rng)));
      bgrp->Append("g" + std::to_string(rng.Below(grp_card)));
      bts->Append(static_cast<int64_t>(rng.Below(100)));
      bm1->Append(rng.Range(-50, 1000));
      bm2->Append(rng.Range(0, 100));
      bfk->Append(static_cast<int64_t>(rng.Below(key_card + key_card / 8)));
    }
    batch->AddColumn("dim", bdim);
    batch->AddColumn("grp", bgrp);
    batch->AddColumn("ts", bts);
    batch->AddColumn("m1", bm1);
    batch->AddColumn("m2", bm2);
    batch->AddColumn("fk", bfk);
    return batch;
  };
  auto make_dim_batch = [&](size_t n) {
    auto batch = std::make_shared<Table>("dimt");
    auto bkey = std::make_shared<Int64Column>();
    auto bscore = std::make_shared<Int64Column>();
    auto bcat = std::make_shared<StringColumn>();
    for (size_t i = 0; i < n; ++i) {
      bkey->Append(static_cast<int64_t>(rng.Below(key_card)));
      bscore->Append(rng.Range(-20, 500));
      bcat->Append("c" + std::to_string(rng.Below(3)));
    }
    batch->AddColumn("key", bkey);
    batch->AddColumn("score", bscore);
    batch->AddColumn("cat", bcat);
    return batch;
  };

  // --- random queries ---------------------------------------------------------
  for (int trial = 0; trial < 20; ++trial) {
    // Scan-mode axis: even trials run the server's vectorized kernels, odd
    // trials the legacy row-at-a-time loop — every backend must byte-match
    // the plaintext reference on both scan paths (and on the SEABED_NO_SIMD
    // build this same rotation pins the scalar kernel fallback).
    SetServerScanMode(trial % 2 == 0 ? ScanMode::kVectorized : ScanMode::kRowAtATime);
    // Append rounds interleave with the queries: every backend ingests the
    // same batch, so answers stay comparable — and any cached result that
    // survives its table's growth (stale ciphertext) diverges from kPlain
    // on the very next trial, which re-issues earlier query shapes by
    // construction (same rng stream prefix reuse is not needed: repeated
    // shapes occur naturally and the caching backends re-run EVERY query
    // warm below).
    if (trial == 5 || trial == 12) {
      const auto batch = make_fact_batch(40 + rng.Below(60));
      for (Backend& b : backends) {
        b.session->Append("fuzz", *batch);
      }
    }
    if (trial == 15) {
      const auto batch = make_dim_batch(10 + rng.Below(20));
      for (Backend& b : backends) {
        b.session->Append("dimt", *batch);
      }
    }

    Query q;
    q.table = "fuzz";
    const bool join_query = rng.Chance(0.3);
    if (join_query) {
      q.join = Join{"dimt", "fk", "right:key"};
    }
    // Random filters first: variance over SPLASHE-splayed measures is
    // unsupported (the encryptor has no squared splayed columns), so the
    // aggregate mix depends on whether the dim filter is present.
    const bool dim_filtered = !join_query && rng.Chance(0.5);
    if (dim_filtered) {
      q.Where("dim", CmpOp::kEq, "v" + std::to_string(rng.Below(dim_card)));
    }
    const char* measures[] = {"m1", "m2"};
    const size_t num_aggs = 1 + rng.Below(3);
    for (size_t a = 0; a < num_aggs; ++a) {
      const std::string alias = "agg" + std::to_string(a);
      if (join_query && rng.Chance(0.4)) {
        // Aggregates over the joined table exercise the replica path.
        if (rng.Chance(0.5)) {
          q.Sum("right:score", alias);
        } else {
          q.Avg("right:score", alias);
        }
        continue;
      }
      const std::string m = measures[rng.Below(2)];
      switch (rng.Below(6)) {
        case 0:
          q.Sum(m, alias);
          break;
        case 1:
          q.Count(alias);
          break;
        case 2:
          q.Avg(m, alias);
          break;
        case 3:
          if (dim_filtered || join_query) {
            q.Sum(m, alias);
          } else {
            q.Variance(m, alias);
          }
          break;
        case 4:
          if (dim_filtered) {
            q.Count(alias);
          } else {
            q.Min("ts", alias);
          }
          break;
        default:
          if (dim_filtered) {
            q.Avg(m, alias);
          } else {
            q.Max("ts", alias);
          }
          break;
      }
    }
    if (rng.Chance(0.5)) {
      const int64_t bound = static_cast<int64_t>(rng.Below(100));
      q.Where("ts", rng.Chance(0.5) ? CmpOp::kGe : CmpOp::kLt, bound);
    }
    if (join_query && rng.Chance(0.4)) {
      q.Where("right:cat", CmpOp::kEq, "c" + std::to_string(rng.Below(3)));
    }
    if (rng.Chance(0.4)) {
      if (join_query && rng.Chance(0.5)) {
        q.GroupBy("right:cat");
      } else {
        q.GroupBy("grp");
        q.expected_groups = rng.Chance(0.5) ? grp_card : 0;
      }
    }
    // Exercise the sharded backend's probe round (the flag is a no-op on the
    // single-server backends).
    q.needs_two_round_trips = rng.Chance(0.15);

    TranslatorOptions topts;
    topts.idlist.use_range = rng.Chance(0.7);
    topts.idlist.compression = static_cast<IdListCompression>(rng.Below(3));
    topts.worker_side_compression = rng.Chance(0.7);

    SCOPED_TRACE("seed=" + std::to_string(seed) + " trial=" + std::to_string(trial));
    const std::vector<std::string> reference =
        RowsAsStrings(backends.front().session->Execute(q, nullptr));

    // --- prepared axis --------------------------------------------------------
    // The same query re-issued through Prepare+bind: a random subset of the
    // filter literals become placeholder slots (placeholders that land on
    // SPLASHE-protected columns exercise the bind-then-ad-hoc fallback), and
    // the bound execution must byte-match the ad-hoc answer on every backend.
    // One parameterization per trial so all backends prepare the same shape.
    Query shape = q;
    std::vector<Value> params;
    for (Predicate& p : shape.filters) {
      if (rng.Chance(0.75)) {
        p.param = static_cast<int>(params.size());
        params.push_back(p.operand);
      }
    }
    const bool prepared_axis = !params.empty();
    if (prepared_axis) {
      const PreparedQuery prep = backends.front().session->Prepare(shape);
      EXPECT_EQ(RowsAsStrings(backends.front().session->Execute(prep, params)), reference);
    }

    // Small row groups so the ~300-900-row tables still span several groups
    // and the probes genuinely prune.
    constexpr ProbeMode kProbeModes[] = {ProbeMode::kOff, ProbeMode::kAuto, ProbeMode::kForced};
    auto probe_options = [](ProbeMode mode) {
      ProbeOptions popts;
      popts.mode = mode;
      popts.row_group_size = 128;
      return popts;
    };

    for (size_t b = 1; b < backends.size(); ++b) {
      Backend& backend = backends[b];
      if (HasVariance(q) && !backend.supports_variance) {
        continue;  // the Paillier baseline stores no squared columns
      }
      if (backend.honors_translator_options) {
        backend.session->set_translator_options(topts);
      }
      SCOPED_TRACE("backend=" + backend.label);
      if (prepared_axis) {
        const PreparedQuery prep = backend.session->Prepare(shape);
        QueryStats pstats;
        EXPECT_EQ(RowsAsStrings(backend.session->Execute(prep, params, &pstats)), reference);
        EXPECT_TRUE(pstats.prepared);
        EXPECT_GE(pstats.bind_seconds, 0.0);
      }
      if (backend.probe_axis && !backend.caching) {
        // Probe axis: identical rows at off, auto and forced.
        for (const ProbeMode mode : kProbeModes) {
          SCOPED_TRACE(std::string("probe=") + ProbeModeName(mode));
          backend.session->set_probe_options(probe_options(mode));
          QueryStats stats;
          EXPECT_EQ(RowsAsStrings(backend.session->Execute(q, &stats)), reference);
          if (mode == ProbeMode::kOff && !q.needs_two_round_trips) {
            EXPECT_FALSE(stats.probe_used);
          }
        }
        continue;
      }
      if (backend.probe_axis && backend.caching) {
        // A warm repeat never reaches the inner backend, so the probe mode
        // rotates per trial and applies to the cold run.
        backend.session->set_probe_options(probe_options(kProbeModes[trial % 3]));
      }
      QueryStats cold;
      EXPECT_EQ(RowsAsStrings(backend.session->Execute(q, &cold)), reference);
      if (backend.caching) {
        // Warm path: the repeat must be answered from the cache and still
        // byte-match the plaintext reference — without probing.
        QueryStats warm;
        EXPECT_EQ(RowsAsStrings(backend.session->Execute(q, &warm)), reference);
        EXPECT_TRUE(warm.cache_hit);
        EXPECT_FALSE(warm.probe_used);
        EXPECT_EQ(warm.result_rows, cold.result_rows);
      }
    }
  }
  SetServerScanMode(ScanMode::kVectorized);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- skewed-append axis ------------------------------------------------------
//
// Appends place whole batches (append locality), so a stream steered onto
// one placement bucket concentrates rows on one shard. This axis drives that
// worst case: every batch lands on the same shard, and the sharded backend
// with rebalancing OFF and ON must both stay equivalent to kPlain while the
// rebalancer migrates whole row-groups behind the queries' back. Probe modes
// rotate per trial so pruned two-round execution also runs over migrated
// groups.
//
// The same stream is the key-range worst case for free: batch timestamps
// increase monotonically (ts_base = running row count), so under kKeyRange
// every appended key lands past the top shard's boundary — the hot-tail
// skew that placement policy rebalances with cascaded boundary moves. Two
// kKeyRange sessions (rebalance off/on) ride along; the trials' ts filters
// route them to shard subsets over boundaries that keep shifting.
class SkewedAppendFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkewedAppendFuzzTest, SkewedStreamsStayEquivalentWithRebalanceOnAndOff) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr size_t kShards = 4;

  auto make_batch = [&](size_t n, int64_t ts_base) {
    auto batch = std::make_shared<Table>("skew");
    auto seg = std::make_shared<StringColumn>();
    auto ts = std::make_shared<Int64Column>();
    auto value = std::make_shared<Int64Column>();
    for (size_t i = 0; i < n; ++i) {
      seg->Append("k" + std::to_string(rng.Below(4)));
      ts->Append(ts_base + static_cast<int64_t>(i));
      value->Append(rng.Range(-50, 500));
    }
    batch->AddColumn("seg", seg);
    batch->AddColumn("ts", ts);
    batch->AddColumn("value", value);
    return batch;
  };

  PlainSchema schema;
  schema.table_name = "skew";
  schema.columns.push_back({"seg", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"value", ColumnType::kInt64, true, std::nullopt});
  std::vector<Query> samples;
  {
    Query q;
    q.table = "skew";
    q.Sum("value").Count().Min("ts").Max("ts");
    q.Where("seg", CmpOp::kEq, std::string("k0"));
    q.Where("ts", CmpOp::kGe, int64_t{0});
    q.GroupBy("seg");
    samples.push_back(q);
  }

  auto options_for = [&](BackendKind backend, bool rebalance, bool key_range = false) {
    SessionOptions options;
    options.backend = backend;
    options.shards = kShards;
    options.planner.expected_rows = 400;
    options.key_seed = seed * 17 + 3;
    options.cluster.num_workers = 4;
    options.cluster.job_overhead_seconds = 0;
    options.cluster.task_overhead_seconds = 0;
    if (rebalance) {
      options.shards_rebalance.enabled = true;
      options.shards_rebalance.max_skew_ratio = 1.2;
      options.shards_rebalance.row_group_size = 64;
    }
    if (key_range) {
      options.shards_placement.policy = PlacementPolicy::kKeyRange;
      options.shards_placement.clustering_columns["skew"] = "ts";
    }
    return options;
  };
  struct Backend {
    std::string label;
    std::unique_ptr<Session> session;
  };
  std::vector<Backend> backends;
  backends.push_back({"plain", std::make_unique<Session>(options_for(BackendKind::kPlain, false))});
  backends.push_back(
      {"sharded", std::make_unique<Session>(options_for(BackendKind::kShardedSeabed, false))});
  backends.push_back(
      {"sharded-rebal",
       std::make_unique<Session>(options_for(BackendKind::kShardedSeabed, true))});
  backends.push_back(
      {"ranged", std::make_unique<Session>(
                     options_for(BackendKind::kShardedSeabed, false, /*key_range=*/true))});
  backends.push_back(
      {"ranged-rebal", std::make_unique<Session>(
                           options_for(BackendKind::kShardedSeabed, true, /*key_range=*/true))});

  const auto base = make_batch(300 + rng.Below(200), 0);
  for (Backend& b : backends) {
    b.session->Attach(CloneTable(*base), schema, samples);
  }
  auto& placement =
      static_cast<const ShardedSeabedBackend&>(backends[1].session->executor());

  // Every append steered onto one bucket: 1-row fillers advance the global
  // row count until the placement hash points at the hot shard, then the
  // real batch lands there whole. All sessions ingest identical batches.
  size_t total_rows = base->NumRows();
  const size_t hot = placement.ShardOfRow(total_rows);
  auto append_all = [&](const std::shared_ptr<Table>& batch) {
    for (Backend& b : backends) {
      b.session->Append("skew", *batch);
    }
    total_rows += batch->NumRows();
  };
  constexpr ProbeMode kProbeModes[] = {ProbeMode::kOff, ProbeMode::kAuto, ProbeMode::kForced};
  for (int trial = 0; trial < 8; ++trial) {
    while (placement.ShardOfRow(total_rows) != hot) {
      append_all(make_batch(1, static_cast<int64_t>(total_rows)));
    }
    append_all(make_batch(120 + rng.Below(120), static_cast<int64_t>(total_rows)));

    Query q;
    q.table = "skew";
    q.Sum("value", "a0").Count("a1");
    if (rng.Chance(0.6)) {
      q.Where("seg", CmpOp::kEq, "k" + std::to_string(rng.Below(5)));
    }
    if (rng.Chance(0.5)) {
      q.Where("ts", rng.Chance(0.5) ? CmpOp::kGe : CmpOp::kLt,
              static_cast<int64_t>(rng.Below(total_rows)));
    }
    if (rng.Chance(0.3)) {
      q.GroupBy("seg");
    }
    q.needs_two_round_trips = rng.Chance(0.25);

    // One probe mode per trial (not all three every trial): a trial at kOff
    // leaves the row-group indexes untouched while appends — and the
    // rebalancer's shrink-then-regrow table swaps — keep happening, so a
    // later kForced trial probes across a genuinely stale window.
    const ProbeMode mode = kProbeModes[(trial + static_cast<int>(seed)) % 3];
    SCOPED_TRACE("seed=" + std::to_string(seed) + " trial=" + std::to_string(trial) +
                 " probe=" + ProbeModeName(mode));
    const auto reference = RowsAsStrings(backends.front().session->Execute(q, nullptr));
    for (size_t b = 1; b < backends.size(); ++b) {
      SCOPED_TRACE("backend=" + backends[b].label);
      ProbeOptions popts;
      popts.mode = mode;
      popts.row_group_size = 64;
      backends[b].session->set_probe_options(popts);
      EXPECT_EQ(RowsAsStrings(backends[b].session->Execute(q, nullptr)), reference);
    }
  }

  // The axis only proves something if the stream was skewed and the
  // rebalancer actually moved row-groups.
  const auto skewed_counts = placement.ShardRowCounts("skew");
  EXPECT_GT(*std::max_element(skewed_counts.begin(), skewed_counts.end()),
            total_rows / 2);
  const std::optional<RebalanceStats> stats = backends[2].session->rebalance_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->rebalances, 0u);
  EXPECT_GT(stats->rows_moved, 0u);
  // ...and on the key-range arm, that the hot tail was real (the top shard
  // took the stream without rebalancing) and boundary moves fired with it on.
  const auto ranged_counts = static_cast<const ShardedSeabedBackend&>(
                                 backends[3].session->executor())
                                 .ShardRowCounts("skew");
  EXPECT_EQ(*std::max_element(ranged_counts.begin(), ranged_counts.end()),
            ranged_counts.back());
  const std::optional<RebalanceStats> ranged_stats = backends[4].session->rebalance_stats();
  ASSERT_TRUE(ranged_stats.has_value());
  EXPECT_GT(ranged_stats->rebalances, 0u);
  EXPECT_GT(ranged_stats->rows_moved, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewedAppendFuzzTest, ::testing::Values(7, 19, 42));

// --- service concurrency axis ------------------------------------------------
//
// The fuzz stream through seabed::Service instead of a caller-thread session:
// M submitter threads race a random query mix into the serving queue, and an
// append is pushed while those queries are still queued/in flight. Every
// answer must equal a sequential kPlain execution at a consistent point:
// each query pins one published table version, so it must equal the pre- OR
// the post-append reference — anything else (torn reads, stale caches, lost
// rows) fails both. No lane gets a byte-for-byte pre-append guarantee
// anymore: the append's barrier is ordering-only on snapshot-isolated
// backends, so a query dequeued before the barrier may still pin the
// post-append version if the append publishes first. The flip side is the
// tentpole's observable claim — appends never block queries — asserted via
// the exec spans: across the run, some append's wall-time span must overlap
// a concurrently executing query group's span. The backend stack rotates
// with the seed (single-server, sharded fan-out, caching over sharded), so
// the axis covers every snapshot read path.
class ServiceConcurrencyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServiceConcurrencyFuzzTest, ThreadedServiceStreamEqualsSequentialPlain) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr int kPhases = 3;
  constexpr size_t kSubmitThreads = 4;
  constexpr size_t kQueriesPerPhase = 16;

  SyntheticSpec spec;
  spec.rows = 400 + rng.Below(400);
  spec.seed = seed * 13 + 1;
  spec.group_cardinality = 2 + rng.Below(5);
  const std::shared_ptr<Table> base = MakeSyntheticTable(spec);
  const PlainSchema schema = SyntheticSchema(spec);
  const std::vector<Query> samples = SyntheticSampleQueries(spec);

  SessionOptions plain_options;
  plain_options.backend = BackendKind::kPlain;
  plain_options.planner.expected_rows = spec.rows;
  plain_options.cluster.job_overhead_seconds = 0;
  plain_options.cluster.task_overhead_seconds = 0;
  Session plain(plain_options);
  plain.Attach(CloneTable(*base), schema, samples);

  ServiceOptions service_options;
  service_options.session = plain_options;
  service_options.session.key_seed = seed * 31 + 7;
  service_options.session.shards = 3;
  service_options.session.cluster.num_workers = 1 + rng.Below(4);
  switch (seed % 3) {
    case 0:
      service_options.session.backend = BackendKind::kSeabed;
      break;
    case 1:
      service_options.session.backend = BackendKind::kShardedSeabed;
      break;
    default:
      service_options.session.backend = BackendKind::kCachingSeabed;
      service_options.session.cache.inner = BackendKind::kShardedSeabed;
      break;
  }
  service_options.num_workers = 4;
  // Stretch each dispatched group's exec span with the modeled-latency
  // pacer (real execution on these tiny tables is sub-millisecond, so the
  // queue would otherwise drain before the append barrier ever pops). The
  // ordering-only barrier pops once every query group has been DEQUEUED,
  // not finished, so the append reliably executes while paced groups are
  // still inside their spans — which is exactly the overlap the tentpole
  // assertion below demands. Answers are unaffected: pacing only sleeps.
  service_options.session.cluster.job_overhead_seconds = 0.02;
  service_options.pace_modeled_latency = true;
  service_options.max_batch = 1 + rng.Below(8);
  service_options.max_queue_depth = 256;  // never reject: the stream must be lossless
  Service service(service_options);
  service.Attach(CloneTable(*base), schema, samples);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " backend=" +
               BackendKindName(service_options.session.backend));

  auto random_query = [&]() {
    Query q;
    q.table = "synthetic";
    switch (rng.Below(3)) {
      case 0:
        q.Sum("value", "a0");
        break;
      case 1:
        q.Sum("value", "a0").Count("a1");
        break;
      default:
        q.Avg("value", "a0");
        break;
    }
    if (rng.Chance(0.7)) {
      q.Where("sel", CmpOp::kLt, static_cast<int64_t>(5 + rng.Below(95)));
    }
    if (rng.Chance(0.4)) {
      q.GroupBy("grp");
      q.expected_groups = spec.group_cardinality;
    }
    return q;
  };

  size_t append_query_overlaps = 0;
  for (int phase = 0; phase < kPhases; ++phase) {
    SCOPED_TRACE("phase=" + std::to_string(phase));
    std::vector<Query> queries;
    std::vector<std::vector<std::string>> references;
    for (size_t i = 0; i < kQueriesPerPhase; ++i) {
      queries.push_back(random_query());
      references.push_back(RowsAsStrings(plain.Execute(queries.back())));
    }

    // Race the phase's queries in from kSubmitThreads producers...
    std::vector<std::future<ServiceResult>> futures(kQueriesPerPhase);
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = t; i < kQueriesPerPhase; i += kSubmitThreads) {
          SubmitOptions submit;
          submit.lane = (i % 2 == 0) ? ServiceLane::kInteractive : ServiceLane::kBatch;
          futures[i] = service.Submit(queries[i], submit);
        }
      });
    }
    for (std::thread& t : submitters) {
      t.join();
    }

    // ...then push the append while they are still queued or in flight: the
    // barrier must order it after every one of them.
    SyntheticSpec batch_spec = spec;
    batch_spec.rows = 30 + rng.Below(80);
    batch_spec.seed = seed * 101 + static_cast<uint64_t>(phase);
    const std::shared_ptr<Table> batch = MakeSyntheticTable(batch_spec);
    std::future<ServiceResult> appended = service.SubmitAppend("synthetic", batch);

    plain.Append("synthetic", *batch);
    const ServiceResult append_result = appended.get();
    ASSERT_TRUE(append_result.ok);
    for (size_t i = 0; i < kQueriesPerPhase; ++i) {
      ServiceResult r = futures[i].get();
      ASSERT_TRUE(r.ok) << "query " << i << ": " << r.error;
      EXPECT_EQ(r.stats.admission, AdmissionOutcome::kAdmitted);
      // Every query pins one published version — the answer must be one of
      // the two sequential references, never a torn state. (No lane is
      // guaranteed the pre-append table: a query dequeued before the
      // barrier may still pin the version the append published first.)
      const std::vector<std::string> got = RowsAsStrings(r.rows);
      EXPECT_TRUE(got == references[i] || got == RowsAsStrings(plain.Execute(queries[i])))
          << "query " << i << " matches neither the pre- nor post-append reference";
      // Appends-never-block-queries, observed: count query spans the
      // append's execution span overlapped.
      if (r.stats.exec_begin < append_result.stats.exec_end &&
          append_result.stats.exec_begin < r.stats.exec_end) {
        ++append_query_overlaps;
      }
    }
  }
  // Across the whole run some append must have executed WHILE a query group
  // was executing — the quiescing barrier would have made that impossible.
  EXPECT_GT(append_query_overlaps, 0u);

  service.Shutdown();
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.executed, static_cast<uint64_t>(kPhases) * kQueriesPerPhase);
  EXPECT_EQ(counters.appends, static_cast<uint64_t>(kPhases));
  EXPECT_EQ(counters.rejected_queue_full, 0u);
  EXPECT_EQ(counters.expired, 0u);
}

// 12 % 3 / 23 % 3 / 46 % 3 pick one seed per backend stack.
INSTANTIATE_TEST_SUITE_P(Seeds, ServiceConcurrencyFuzzTest, ::testing::Values(12, 23, 46));

}  // namespace
}  // namespace seabed
