// Property-based equivalence fuzzing: random queries over a random table
// must produce identical answers on the plaintext executor and the full
// Seabed pipeline. Each parameterized instance uses a different RNG seed,
// covering filter/aggregate/group-by combinations the hand-written
// end-to-end tests do not enumerate.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/query/plain_executor.h"
#include "src/seabed/session.h"

namespace seabed {
namespace {

std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, RandomQueriesMatchPlain) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  // --- random table -----------------------------------------------------------
  const size_t rows = 500 + rng.Below(1500);
  const uint64_t dim_card = 3 + rng.Below(5);
  const uint64_t grp_card = 2 + rng.Below(4);

  auto table = std::make_shared<Table>("fuzz");
  auto dim = std::make_shared<StringColumn>();
  auto grp = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto m1 = std::make_shared<Int64Column>();
  auto m2 = std::make_shared<Int64Column>();

  // Skewed dimension values: value k with weight ~ 1/(k+1).
  ValueDistribution dist;
  double total_weight = 0;
  for (uint64_t k = 0; k < dim_card; ++k) {
    dist.values.push_back("v" + std::to_string(k));
    dist.frequencies.push_back(1.0 / static_cast<double>(k + 1));
    total_weight += dist.frequencies.back();
  }
  for (auto& f : dist.frequencies) {
    f /= total_weight;
  }
  const ZipfSampler dim_sampler(dim_card, 1.0);
  for (size_t i = 0; i < rows; ++i) {
    dim->Append("v" + std::to_string(dim_sampler.Sample(rng)));
    grp->Append("g" + std::to_string(rng.Below(grp_card)));
    ts->Append(static_cast<int64_t>(rng.Below(100)));
    m1->Append(rng.Range(-50, 1000));
    m2->Append(rng.Range(0, 100));
  }
  table->AddColumn("dim", dim);
  table->AddColumn("grp", grp);
  table->AddColumn("ts", ts);
  table->AddColumn("m1", m1);
  table->AddColumn("m2", m2);

  PlainSchema schema;
  schema.table_name = "fuzz";
  schema.columns.push_back({"dim", ColumnType::kString, true, dist});
  schema.columns.push_back({"grp", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"m1", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"m2", ColumnType::kInt64, true, std::nullopt});

  std::vector<Query> samples;
  {
    // Additive aggregates + the dim filter (SPLASHE-compatible)...
    Query q;
    q.table = "fuzz";
    q.Sum("m1").Sum("m2").Count().Avg("m1");
    q.Where("dim", CmpOp::kEq, std::string("v0"));
    q.GroupBy("grp");
    samples.push_back(q);
    // ...and the non-additive shapes in separate queries, so the planner
    // keeps SPLASHE for `dim`.
    Query q2;
    q2.table = "fuzz";
    q2.Variance("m1").Variance("m2").Min("ts").Max("ts");
    q2.Where("ts", CmpOp::kGe, int64_t{0});
    samples.push_back(q2);
  }
  SessionOptions options;
  options.backend = BackendKind::kSeabed;
  options.planner.expected_rows = rows;
  options.key_seed = seed * 31 + 7;
  options.cluster.num_workers = 1 + rng.Below(6);
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  Session session(options);
  session.Attach(table, schema, samples);
  const Cluster& cluster = session.cluster();

  // --- random queries -----------------------------------------------------------
  for (int trial = 0; trial < 12; ++trial) {
    Query q;
    q.table = "fuzz";
    // Random filters first: variance over SPLASHE-splayed measures is
    // unsupported (the encryptor has no squared splayed columns), so the
    // aggregate mix depends on whether the dim filter is present.
    const bool dim_filtered = rng.Chance(0.5);
    if (dim_filtered) {
      q.Where("dim", CmpOp::kEq, "v" + std::to_string(rng.Below(dim_card)));
    }
    const char* measures[] = {"m1", "m2"};
    const size_t num_aggs = 1 + rng.Below(3);
    for (size_t a = 0; a < num_aggs; ++a) {
      const std::string m = measures[rng.Below(2)];
      switch (rng.Below(6)) {
        case 0:
          q.Sum(m, "agg" + std::to_string(a));
          break;
        case 1:
          q.Count("agg" + std::to_string(a));
          break;
        case 2:
          q.Avg(m, "agg" + std::to_string(a));
          break;
        case 3:
          if (dim_filtered) {
            q.Sum(m, "agg" + std::to_string(a));
          } else {
            q.Variance(m, "agg" + std::to_string(a));
          }
          break;
        case 4:
          if (dim_filtered) {
            q.Count("agg" + std::to_string(a));
          } else {
            q.Min("ts", "agg" + std::to_string(a));
          }
          break;
        default:
          if (dim_filtered) {
            q.Avg(m, "agg" + std::to_string(a));
          } else {
            q.Max("ts", "agg" + std::to_string(a));
          }
          break;
      }
    }
    if (rng.Chance(0.5)) {
      const int64_t bound = static_cast<int64_t>(rng.Below(100));
      q.Where("ts", rng.Chance(0.5) ? CmpOp::kGe : CmpOp::kLt, bound);
    }
    if (rng.Chance(0.4)) {
      q.GroupBy("grp");
      q.expected_groups = rng.Chance(0.5) ? grp_card : 0;
    }

    SCOPED_TRACE("seed=" + std::to_string(seed) + " trial=" + std::to_string(trial));
    const ResultSet plain = ExecutePlain(*table, q, cluster);

    TranslatorOptions topts;
    topts.idlist.use_range = rng.Chance(0.7);
    topts.idlist.compression = static_cast<IdListCompression>(rng.Below(3));
    topts.worker_side_compression = rng.Chance(0.7);
    session.set_translator_options(topts);
    const ResultSet enc = session.Execute(q);

    EXPECT_EQ(RowsAsStrings(enc), RowsAsStrings(plain));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace seabed
