#include "src/seabed/splashe.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"

namespace seabed {
namespace {

// Checks the paper's inequality directly for a chosen k.
bool KIsFeasible(const std::vector<uint64_t>& counts, size_t k) {
  if (k >= counts.size()) {
    return true;
  }
  const uint64_t threshold = counts[k];
  uint64_t prefix = 0;
  for (size_t i = 0; i < k; ++i) {
    prefix += counts[i];
  }
  uint64_t deficit = 0;
  for (size_t i = k; i < counts.size(); ++i) {
    deficit += threshold - counts[i];
  }
  return prefix >= deficit;
}

TEST(ChooseSplayKTest, PaperStyleExample) {
  // USA and Canada dominate: 1000 each, 50 countries with <= 50 each (the
  // Appendix A.2 example).
  std::vector<uint64_t> counts = {1000, 1000};
  for (int i = 0; i < 50; ++i) {
    counts.push_back(30);
  }
  const size_t k = ChooseSplayK(counts);
  EXPECT_LE(k, 2u);
  EXPECT_TRUE(KIsFeasible(counts, k));
}

TEST(ChooseSplayKTest, UniformNeedsNoSplaying) {
  const std::vector<uint64_t> counts(20, 100);
  EXPECT_EQ(ChooseSplayK(counts), 0u);
}

TEST(ChooseSplayKTest, SingleValue) {
  EXPECT_EQ(ChooseSplayK({42}), 0u);
}

TEST(ChooseSplayKTest, ResultIsMinimalFeasible) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint64_t> counts;
    const size_t d = 2 + rng.Below(30);
    for (size_t i = 0; i < d; ++i) {
      counts.push_back(rng.Below(10000));
    }
    std::sort(counts.rbegin(), counts.rend());
    const size_t k = ChooseSplayK(counts);
    EXPECT_TRUE(KIsFeasible(counts, k));
    if (k > 0) {
      EXPECT_FALSE(KIsFeasible(counts, k - 1)) << "k not minimal";
    }
  }
}

TEST(ChooseSplayKTest, HeavySkewGivesSmallK) {
  // "The more heavily skewed the distribution, the smaller the k."
  std::vector<uint64_t> skewed = {1000000, 5, 5, 5, 5, 5, 5, 5, 5, 5};
  EXPECT_EQ(ChooseSplayK(skewed), 1u);
}

TEST(ExpansionTest, BasicGrowsWithCardinality) {
  EXPECT_LT(BasicSplasheExpansion(2, 1), BasicSplasheExpansion(100, 1));
  // d columns for the dim + d per measure over (1 + m) baseline.
  EXPECT_DOUBLE_EQ(BasicSplasheExpansion(2, 1), (2.0 + 2.0) / 2.0);
}

TEST(ExpansionTest, EnhancedBeatsBasicForSkewedDims) {
  // k = 2 frequent values out of 100: enhanced needs ~4+3m columns vs 100+100m.
  EXPECT_LT(EnhancedSplasheExpansion(2, 1), BasicSplasheExpansion(100, 1));
}

TEST(BuildLayoutTest, BasicLayoutSplaysEverything) {
  ValueDistribution dist;
  dist.values = {"a", "b", "c"};
  dist.frequencies = {0.5, 0.3, 0.2};
  const SplasheLayout layout =
      BuildSplasheLayout("dim", dist, {"m1"}, /*enhanced=*/false, 1000);
  EXPECT_FALSE(layout.enhanced);
  EXPECT_EQ(layout.splayed_values.size(), 3u);
  EXPECT_TRUE(layout.other_values.empty());
  EXPECT_TRUE(layout.IsSplayedValue("b"));
  EXPECT_FALSE(layout.IsSplayedValue("zzz"));
}

TEST(BuildLayoutTest, EnhancedSplitsFrequentFromInfrequent) {
  ValueDistribution dist;
  dist.values = {"usa", "canada", "india", "chile", "iraq"};
  dist.frequencies = {0.45, 0.45, 0.04, 0.03, 0.03};
  const SplasheLayout layout =
      BuildSplasheLayout("country", dist, {"salary"}, /*enhanced=*/true, 10000);
  EXPECT_TRUE(layout.enhanced);
  // USA and Canada are frequent.
  EXPECT_TRUE(layout.IsSplayedValue("usa"));
  EXPECT_TRUE(layout.IsSplayedValue("canada"));
  EXPECT_FALSE(layout.IsSplayedValue("india"));
  EXPECT_EQ(layout.other_values.size(), 3u);
  EXPECT_GT(layout.target_count, 0u);
}

TEST(BuildLayoutTest, ColumnNamingConventions) {
  ValueDistribution dist;
  dist.values = {"x", "y"};
  dist.frequencies = {0.9, 0.1};
  const SplasheLayout layout = BuildSplasheLayout("d", dist, {"m"}, true, 1000);
  EXPECT_EQ(layout.CountColumn("x"), "d@x#cnt");
  EXPECT_EQ(layout.OthersCountColumn(), "d@#cnt");
  EXPECT_EQ(layout.DetColumn(), "d#det");
  EXPECT_EQ(SplasheLayout::MeasureColumn("m", "x"), "m@x#ashe");
  EXPECT_EQ(SplasheLayout::OthersMeasureColumn("m"), "m@#ashe");
}

}  // namespace
}  // namespace seabed
