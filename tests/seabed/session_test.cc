// Cross-backend equivalence through the Session facade: the same parsed
// Query objects must return identical rows from PlainExecutorBackend,
// PaillierBackend and SeabedBackend, and every backend must populate
// QueryStats. This is the contract the paper's whole evaluation rests on —
// three systems, one query set.
#include "src/seabed/session.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/query/parser.h"
#include "src/workload/bdb.h"
#include "tests/seabed/test_util.h"

namespace seabed {
namespace {
// RowsAsStrings and the ExpectProbeStatsInvariants probe tier come from
// tests/seabed/test_util.h — the sharded-backend suite applies the same
// invariants to the fan-out path.

ClusterConfig TestClusterConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.job_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  return cfg;
}

SessionOptions TestOptions(BackendKind backend) {
  SessionOptions options;
  options.backend = backend;
  options.cluster = TestClusterConfig();
  options.planner.expected_rows = 3000;
  options.paillier.modulus_bits = 256;
  options.key_seed = 1234;
  return options;
}

// One shared "emp" data set attached to a session per backend.
class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : plain_(TestOptions(BackendKind::kPlain)),
        seabed_(TestOptions(BackendKind::kSeabed)),
        paillier_(TestOptions(BackendKind::kPaillier)) {
    schema_.table_name = "emp";
    ValueDistribution country;
    country.values = {"usa", "canada", "india", "chile", "iraq"};
    country.frequencies = {0.42, 0.38, 0.08, 0.07, 0.05};
    schema_.columns.push_back({"country", ColumnType::kString, true, country});
    schema_.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"dept", ColumnType::kString, false, std::nullopt});

    table_ = std::make_shared<Table>("emp");
    auto country_col = std::make_shared<StringColumn>();
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    auto dept_col = std::make_shared<StringColumn>();
    Rng rng(77);
    const char* countries[] = {"usa", "canada", "india", "chile", "iraq"};
    const double cdf[] = {0.42, 0.80, 0.88, 0.95, 1.0};
    const char* stores[] = {"s1", "s2", "s3"};
    const char* depts[] = {"eng", "sales"};
    for (int i = 0; i < 3000; ++i) {
      const double u = rng.NextDouble();
      int pick = 0;
      while (u > cdf[pick]) {
        ++pick;
      }
      country_col->Append(countries[pick]);
      store_col->Append(stores[rng.Below(3)]);
      ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
      salary_col->Append(rng.Range(-1000, 100000));
      dept_col->Append(depts[rng.Below(2)]);
    }
    table_->AddColumn("country", country_col);
    table_->AddColumn("store", store_col);
    table_->AddColumn("ts", ts_col);
    table_->AddColumn("salary", salary_col);
    table_->AddColumn("dept", dept_col);

    for (Session* s : AllSessions()) {
      s->Attach(table_, schema_, SampleQueries());
    }
  }

  static std::vector<Query> SampleQueries() {
    std::vector<Query> queries;
    {
      Query q;
      q.table = "emp";
      q.Sum("salary").Count().Where("country", CmpOp::kEq, std::string("india"));
      queries.push_back(q);
    }
    {
      Query q;
      q.table = "emp";
      q.Avg("salary").Min("ts").Max("ts").Where("ts", CmpOp::kGe, int64_t{500});
      queries.push_back(q);
    }
    {
      Query q;
      q.table = "emp";
      q.Sum("salary").GroupBy("store");
      queries.push_back(q);
    }
    return queries;
  }

  std::vector<Session*> AllSessions() { return {&plain_, &seabed_, &paillier_}; }

  // The queries every backend must agree on.
  static std::vector<Query> EquivalenceQueries() {
    std::vector<Query> queries;
    queries.push_back(MustParseSql(
        "SELECT SUM(salary) AS total, COUNT(*) AS n FROM emp WHERE country = 'india'"));
    queries.push_back(MustParseSql(
        "SELECT SUM(salary) AS total, COUNT(*) AS n FROM emp WHERE ts >= 500"));
    queries.push_back(MustParseSql(
        "SELECT AVG(salary) AS mean FROM emp WHERE dept = 'eng'"));
    queries.push_back(MustParseSql(
        "SELECT SUM(salary) AS total, COUNT(*) AS n FROM emp GROUP BY store"));
    queries.push_back(MustParseSql(
        "SELECT MIN(ts) AS lo, MAX(ts) AS hi FROM emp WHERE dept = 'sales'"));
    return queries;
  }

  Session plain_;
  Session seabed_;
  Session paillier_;
  PlainSchema schema_;
  std::shared_ptr<Table> table_;
};

TEST_F(SessionTest, AllBackendsReturnIdenticalRows) {
  for (const Query& q : EquivalenceQueries()) {
    const ResultSet reference = plain_.Execute(q);
    const ResultSet seabed = seabed_.Execute(q);
    const ResultSet paillier = paillier_.Execute(q);
    EXPECT_EQ(RowsAsStrings(seabed), RowsAsStrings(reference));
    EXPECT_EQ(RowsAsStrings(paillier), RowsAsStrings(reference));
    // Probe tier: the same queries at probe off vs. forced, on every backend
    // (kSeabed prunes row groups; kPlain/kPaillier must ignore the knob).
    for (Session* s : AllSessions()) {
      ExpectProbeStatsInvariants(*s, q, RowsAsStrings(reference));
    }
  }
}

TEST_F(SessionTest, QueryStatsArePopulatedByEveryBackend) {
  const Query q = MustParseSql("SELECT SUM(salary) AS total FROM emp");
  for (Session* s : AllSessions()) {
    QueryStats stats;
    const ResultSet r = s->Execute(q, &stats);
    EXPECT_EQ(stats.backend, BackendKindName(s->backend_kind()));
    EXPECT_EQ(stats.result_rows, r.rows.size());
    EXPECT_GT(stats.result_bytes, 0u);
    EXPECT_GT(stats.network_seconds, 0.0);
    EXPECT_GE(stats.client_seconds, 0.0);
    EXPECT_GE(stats.server_seconds, 0.0);
    EXPECT_GT(stats.job.num_tasks, 0u);
  }
}

TEST_F(SessionTest, SeabedStatsCountPrfCalls) {
  QueryStats stats;
  seabed_.Execute(MustParseSql("SELECT SUM(salary) AS total FROM emp"), &stats);
  // Selectivity 100% with 4 partitions and worker-side compression: at most
  // 2 PRF calls per partition blob (Section 6.6).
  EXPECT_GT(stats.prf_calls, 0u);
  EXPECT_LE(stats.prf_calls, 8u);
  EXPECT_GT(stats.translate_seconds, 0.0);
}

TEST_F(SessionTest, ExecuteBatchMatchesSerialExecution) {
  const std::vector<Query> queries = EquivalenceQueries();
  std::vector<QueryStats> stats;
  const std::vector<ResultSet> batch = seabed_.ExecuteBatch(queries, &stats);
  ASSERT_EQ(batch.size(), queries.size());
  ASSERT_EQ(stats.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(RowsAsStrings(batch[i]), RowsAsStrings(seabed_.Execute(queries[i]))) << i;
    EXPECT_EQ(stats[i].backend, "seabed");
    EXPECT_EQ(stats[i].result_rows, batch[i].rows.size());
  }
}

TEST_F(SessionTest, TranslatorKnobsSweepWithoutRewiring) {
  const Query q = MustParseSql("SELECT SUM(salary) AS total FROM emp WHERE ts < 300");
  const auto reference = RowsAsStrings(plain_.Execute(q));
  for (bool worker_side : {true, false}) {
    TranslatorOptions topts;
    topts.worker_side_compression = worker_side;
    seabed_.set_translator_options(topts);
    EXPECT_EQ(RowsAsStrings(seabed_.Execute(q)), reference);
  }
  seabed_.set_translator_options(TranslatorOptions());
}

TEST_F(SessionTest, UseClusterSweepsCoreCounts) {
  const Query q = MustParseSql("SELECT SUM(salary) AS total FROM emp");
  const auto reference = RowsAsStrings(seabed_.Execute(q));
  ClusterConfig cfg = TestClusterConfig();
  cfg.num_workers = 7;
  const Cluster wide(cfg);
  seabed_.UseCluster(&wide);
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q, &stats)), reference);
  EXPECT_EQ(stats.job.worker_seconds.size(), 7u);
  seabed_.UseCluster(nullptr);
}

TEST_F(SessionTest, AppendGrowsPlainAndEncryptedState) {
  auto batch = std::make_shared<Table>("emp");
  auto country_col = std::make_shared<StringColumn>();
  auto store_col = std::make_shared<StringColumn>();
  auto ts_col = std::make_shared<Int64Column>();
  auto salary_col = std::make_shared<Int64Column>();
  auto dept_col = std::make_shared<StringColumn>();
  Rng rng(99);
  const char* countries[] = {"usa", "canada", "india", "chile", "iraq"};
  for (int i = 0; i < 200; ++i) {
    country_col->Append(countries[rng.Below(5)]);
    store_col->Append("s1");
    ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
    salary_col->Append(rng.Range(0, 1000));
    dept_col->Append("eng");
  }
  batch->AddColumn("country", country_col);
  batch->AddColumn("store", store_col);
  batch->AddColumn("ts", ts_col);
  batch->AddColumn("salary", salary_col);
  batch->AddColumn("dept", dept_col);

  // NOTE: sessions share `table_` via shared_ptr, so append through exactly
  // one session and compare against a plain session attached separately.
  const size_t before = table_->NumRows();
  seabed_.Append("emp", *batch);
  EXPECT_EQ(table_->NumRows(), before + 200);
  EXPECT_EQ(seabed_.encrypted_database("emp").table->NumRows(), before + 200);

  const Query q = MustParseSql("SELECT SUM(salary) AS total, COUNT(*) AS n FROM emp");
  // plain_ executes over the shared (already grown) plaintext table.
  EXPECT_EQ(RowsAsStrings(seabed_.Execute(q)), RowsAsStrings(plain_.Execute(q)));
}

// --- joined tables across backends -------------------------------------------

class SessionJoinTest : public ::testing::Test {
 protected:
  SessionJoinTest()
      : plain_(JoinOptions(BackendKind::kPlain)),
        seabed_(JoinOptions(BackendKind::kSeabed)),
        paillier_(JoinOptions(BackendKind::kPaillier)) {
    spec_.rankings_rows = 400;
    spec_.uservisits_rows = 1500;
    spec_.num_urls = 250;
    const auto rankings = MakeRankingsTable(spec_);
    const auto uservisits = MakeUserVisitsTable(spec_);
    for (Session* s : {&plain_, &seabed_, &paillier_}) {
      s->Attach(rankings, RankingsSchema(), RankingsSampleQueries());
      s->Attach(uservisits, UserVisitsSchema(), UserVisitsSampleQueries());
    }
  }

  static SessionOptions JoinOptions(BackendKind backend) {
    SessionOptions options;
    options.backend = backend;
    options.cluster = TestClusterConfig();
    options.paillier.modulus_bits = 256;
    options.key_seed = 3;
    return options;
  }

  BdbSpec spec_;
  Session plain_;
  Session seabed_;
  Session paillier_;
};

TEST_F(SessionJoinTest, JoinQueriesAgreeAcrossBackends) {
  for (const BdbQuery& bq : BdbQuerySet()) {
    if (!bq.query.join.has_value()) {
      continue;
    }
    SCOPED_TRACE(bq.label);
    const auto reference = RowsAsStrings(plain_.Execute(bq.query));
    EXPECT_EQ(RowsAsStrings(seabed_.Execute(bq.query)), reference);
    EXPECT_EQ(RowsAsStrings(paillier_.Execute(bq.query)), reference);
    // A forced probe may prune on the fact-side predicates only; the join
    // and right-table filters must still see every surviving row.
    ExpectProbeStatsInvariants(seabed_, bq.query, reference);
  }
}

TEST_F(SessionJoinTest, CacheHitsNeverProbe) {
  SessionOptions options = JoinOptions(BackendKind::kCachingSeabed);
  options.cache.inner = BackendKind::kSeabed;
  options.probe.mode = ProbeMode::kForced;
  options.probe.row_group_size = 256;
  Session caching(std::move(options));
  caching.Attach(MakeRankingsTable(spec_), RankingsSchema(), RankingsSampleQueries());

  Query q = MustParseSql(
      "SELECT SUM(pageRank) AS total, COUNT(*) AS n FROM rankings WHERE pageRank >= 4000");
  QueryStats cold;
  const auto cold_rows = RowsAsStrings(caching.Execute(q, &cold));
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(cold.probe_used);  // forced mode reaches the inner backend

  QueryStats warm;
  EXPECT_EQ(RowsAsStrings(caching.Execute(q, &warm)), cold_rows);
  // The stats-invariant the probe docs promise: a result served from the
  // client-side cache never ran a probe round.
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.probe_used);
  EXPECT_EQ(warm.probe_seconds, 0.0);
  EXPECT_EQ(warm.row_groups_total, 0u);
}

}  // namespace
}  // namespace seabed
