// Direct tests on the Server: response shapes, inflation on the wire,
// worker/driver compression, shuffle accounting, joins.
#include "src/seabed/server.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/seabed/client.h"
#include "src/seabed/planner.h"
#include "src/seabed/scan_kernels.h"

namespace seabed {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : cluster_(Config()), keys_(ClientKeys::FromSeed(61)) {
    schema_.table_name = "s";
    schema_.columns.push_back({"g", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"m", ColumnType::kInt64, true, std::nullopt});

    auto table = std::make_shared<Table>("s");
    auto g = std::make_shared<StringColumn>();
    auto m = std::make_shared<Int64Column>();
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
      g->Append(i % 2 ? "odd" : "even");
      m->Append(i);
    }
    table->AddColumn("g", g);
    table->AddColumn("m", m);

    Query sample;
    sample.table = "s";
    sample.Sum("m").GroupBy("g");
    PlannerOptions popts;
    popts.expected_rows = 1000;
    plan_ = PlanEncryption(schema_, {sample}, popts);
    const Encryptor encryptor(keys_);
    db_ = encryptor.Encrypt(*table, schema_, plan_);
  }

  static ClusterConfig Config() {
    ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.job_overhead_seconds = 0;
    cfg.task_overhead_seconds = 0;
    return cfg;
  }

  TranslatedQuery Translate(const Query& q, TranslatorOptions topts = {}) {
    topts.cluster_workers = cluster_.num_workers();
    const Translator translator(db_, keys_);
    return translator.Translate(q, topts);
  }

  Cluster cluster_;
  ClientKeys keys_;
  PlainSchema schema_;
  EncryptionPlan plan_;
  EncryptedDatabase db_;
  Server server_;
};

TEST_F(ServerTest, GlobalSumProducesOneGroupWithBlobs) {
  Query q;
  q.table = "s";
  q.Sum("m");
  const TranslatedQuery tq = Translate(q);
  const EncryptedResponse r = server_.Execute(tq.server, cluster_, db_.table.get(), nullptr);
  ASSERT_EQ(r.groups.size(), 1u);
  ASSERT_EQ(r.groups[0].aggs.size(), 1u);
  // Worker-side compression: one blob per partition that saw rows.
  EXPECT_EQ(r.groups[0].aggs[0].id_blobs.size(), 4u);
  EXPECT_GT(r.response_bytes, 0u);
  EXPECT_EQ(r.shuffle_bytes, 0u);  // no group-by: no shuffle accounting
}

TEST_F(ServerTest, DriverSideCompressionYieldsSingleBlob) {
  Query q;
  q.table = "s";
  q.Sum("m");
  TranslatorOptions topts;
  topts.worker_side_compression = false;
  const TranslatedQuery tq = Translate(q, topts);
  const EncryptedResponse r = server_.Execute(tq.server, cluster_, db_.table.get(), nullptr);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_EQ(r.groups[0].aggs[0].id_blobs.size(), 1u);
  EXPECT_GT(r.driver_seconds, 0.0);
}

TEST_F(ServerTest, GroupByCountsShuffleBytes) {
  Query q;
  q.table = "s";
  q.Sum("m").GroupBy("g");
  const TranslatedQuery tq = Translate(q);
  const EncryptedResponse r = server_.Execute(tq.server, cluster_, db_.table.get(), nullptr);
  EXPECT_EQ(r.groups.size(), 2u);
  EXPECT_GT(r.shuffle_bytes, 0u);
  EXPECT_GT(r.shuffle_seconds, 0.0);
}

TEST_F(ServerTest, InflationMultipliesWireGroups) {
  Query q;
  q.table = "s";
  q.Sum("m").GroupBy("g");
  q.expected_groups = 2;  // 2 < 4 workers -> inflation 2
  const TranslatedQuery tq = Translate(q);
  EXPECT_EQ(tq.server.inflation, 2u);
  const EncryptedResponse r = server_.Execute(tq.server, cluster_, db_.table.get(), nullptr);
  EXPECT_EQ(r.groups.size(), 4u);  // 2 groups x 2 suffixes
  // Suffixes recorded for client deflation.
  bool saw_nonzero_suffix = false;
  for (const auto& g : r.groups) {
    saw_nonzero_suffix |= g.inflation_suffix != 0;
  }
  EXPECT_TRUE(saw_nonzero_suffix);
}

TEST_F(ServerTest, ServerSeesOnlyCiphertext) {
  // Structural check on the trust boundary: no plaintext column of the
  // sensitive schema survives in the encrypted table.
  EXPECT_FALSE(db_.table->HasColumn("g"));
  EXPECT_FALSE(db_.table->HasColumn("m"));
  for (const auto& name : db_.table->column_names()) {
    const ColumnType type = db_.table->GetColumn(name)->type();
    EXPECT_TRUE(type == ColumnType::kAshe || type == ColumnType::kDet ||
                type == ColumnType::kOre)
        << name;
  }
}

TEST_F(ServerTest, UnknownTableAborts) {
  ServerPlan plan;
  plan.table = "missing";
  EXPECT_DEATH(server_.Execute(plan, cluster_, nullptr, nullptr), "no table named");
}

TEST_F(ServerTest, ResponseBytesGrowWithSelectivityFragmentation) {
  // An all-rows sum has one contiguous run; a fragmented DET-filtered one
  // (every other row) ships many runs.
  Query all;
  all.table = "s";
  all.Sum("m");
  Query odd;
  odd.table = "s";
  odd.Sum("m").Where("g", CmpOp::kEq, std::string("odd"));
  TranslatorOptions topts;
  topts.idlist.compression = IdListCompression::kNone;  // isolate run counts
  const EncryptedResponse r_all =
      server_.Execute(Translate(all, topts).server, cluster_, db_.table.get(), nullptr);
  const EncryptedResponse r_odd =
      server_.Execute(Translate(odd, topts).server, cluster_, db_.table.get(), nullptr);
  EXPECT_GT(r_odd.response_bytes, r_all.response_bytes);
}

TEST_F(ServerTest, ScanModesProduceIdenticalResponses) {
  // The vectorized kernel path and the legacy row-at-a-time loop must be
  // bit-identical: same groups, same aggregates, same touched accounting.
  Query q;
  q.table = "s";
  q.Sum("m").Where("g", CmpOp::kEq, std::string("odd")).GroupBy("g");
  const TranslatedQuery tq = Translate(q);

  SetServerScanMode(ScanMode::kVectorized);
  const EncryptedResponse vec = server_.Execute(tq.server, cluster_, db_.table.get(), nullptr);
  SetServerScanMode(ScanMode::kRowAtATime);
  const EncryptedResponse row = server_.Execute(tq.server, cluster_, db_.table.get(), nullptr);
  SetServerScanMode(ScanMode::kVectorized);

  EXPECT_EQ(vec.rows_touched, row.rows_touched);
  ASSERT_EQ(vec.groups.size(), row.groups.size());
  for (size_t g = 0; g < vec.groups.size(); ++g) {
    EXPECT_EQ(vec.groups[g].key, row.groups[g].key);
    ASSERT_EQ(vec.groups[g].aggs.size(), row.groups[g].aggs.size());
    for (size_t a = 0; a < vec.groups[g].aggs.size(); ++a) {
      EXPECT_EQ(vec.groups[g].aggs[a].ashe_value, row.groups[g].aggs[a].ashe_value);
      EXPECT_EQ(vec.groups[g].aggs[a].row_count, row.groups[g].aggs[a].row_count);
    }
  }
}

TEST(ServerGroupKeyTest, AdjacentStringPartsNeverAlias) {
  // Regression for the group-key encoding: keys used to be raw
  // '\x1f'-separated concatenation, so the distinct tuples ("a\x1f", "b")
  // and ("a", "\x1fb") serialized identically and their aggregates merged
  // into one group. Length-prefixed parts keep them distinct.
  PlainSchema schema;
  schema.table_name = "t";
  schema.columns.push_back({"g1", ColumnType::kString, false, std::nullopt});
  schema.columns.push_back({"g2", ColumnType::kString, false, std::nullopt});

  auto table = std::make_shared<Table>("t");
  auto g1 = std::make_shared<StringColumn>();
  auto g2 = std::make_shared<StringColumn>();
  g1->Append("a\x1f");
  g2->Append("b");
  g1->Append("a");
  g2->Append("\x1f" "b");
  table->AddColumn("g1", g1);
  table->AddColumn("g2", g2);

  Query sample;
  sample.table = "t";
  sample.Count().GroupBy("g1").GroupBy("g2");
  PlannerOptions popts;
  popts.expected_rows = 2;
  const EncryptionPlan plan = PlanEncryption(schema, {sample}, popts);
  const ClientKeys keys = ClientKeys::FromSeed(17);
  const Encryptor encryptor(keys);
  const EncryptedDatabase db = encryptor.Encrypt(*table, schema, plan);

  ClusterConfig cfg;
  cfg.num_workers = 1;
  const Cluster cluster(cfg);
  TranslatorOptions topts;
  topts.cluster_workers = 1;
  const Translator translator(db, keys);
  const TranslatedQuery tq = translator.Translate(sample, topts);

  const Server server;
  const EncryptedResponse r = server.Execute(tq.server, cluster, db.table.get(), nullptr);
  // Two distinct key tuples -> two groups, one row each. The old encoding
  // collapsed them into a single group of count 2.
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].aggs[0].row_count, 1u);
  EXPECT_EQ(r.groups[1].aggs[0].row_count, 1u);
}

}  // namespace
}  // namespace seabed
