// Tests for incremental insertion (Session::Append over
// Encryptor::AppendRows, paper Section 4.1).
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/query/plain_executor.h"
#include "src/seabed/session.h"

namespace seabed {
namespace {

struct AppendFixture {
  AppendFixture() : session(Options()) {
    schema.table_name = "log";
    ValueDistribution dist;
    dist.values = {"a", "b", "c", "d"};
    dist.frequencies = {0.5, 0.3, 0.12, 0.08};
    schema.columns.push_back({"dim", ColumnType::kString, true, dist});
    schema.columns.push_back({"m", ColumnType::kInt64, true, std::nullopt});

    Query sample;
    sample.table = "log";
    sample.Sum("m").Count().Where("dim", CmpOp::kEq, std::string("c"));

    initial = MakeBatch(1000, 5);
    // Attach a copy: Session::Append grows the attached plaintext table in
    // place, and the tests compare against hand-concatenated batches.
    session.Attach(Combined({initial}), schema, {sample});
  }

  static SessionOptions Options() {
    SessionOptions options;
    options.backend = BackendKind::kSeabed;
    options.cluster.num_workers = 3;
    options.cluster.job_overhead_seconds = 0;
    options.cluster.task_overhead_seconds = 0;
    options.planner.expected_rows = 2000;
    options.key_seed = 71;
    return options;
  }

  std::shared_ptr<Table> MakeBatch(size_t rows, uint64_t seed) const {
    Rng rng(seed);
    auto table = std::make_shared<Table>("log");
    auto dim = std::make_shared<StringColumn>();
    auto m = std::make_shared<Int64Column>();
    const char* values[] = {"a", "b", "c", "d"};
    const double cdf[] = {0.5, 0.8, 0.92, 1.0};
    for (size_t i = 0; i < rows; ++i) {
      const double u = rng.NextDouble();
      int pick = 0;
      while (u > cdf[pick]) {
        ++pick;
      }
      dim->Append(values[pick]);
      m->Append(rng.Range(0, 1000));
    }
    table->AddColumn("dim", dim);
    table->AddColumn("m", m);
    return table;
  }

  // Concatenation of all plaintext batches, for cross-checking.
  std::shared_ptr<Table> Combined(const std::vector<std::shared_ptr<Table>>& batches) const {
    auto table = std::make_shared<Table>("log");
    auto dim = std::make_shared<StringColumn>();
    auto m = std::make_shared<Int64Column>();
    for (const auto& b : batches) {
      const auto* bd = static_cast<const StringColumn*>(b->GetColumn("dim").get());
      const auto* bm = static_cast<const Int64Column*>(b->GetColumn("m").get());
      for (size_t row = 0; row < b->NumRows(); ++row) {
        dim->Append(bd->Get(row));
        m->Append(bm->Get(row));
      }
    }
    table->AddColumn("dim", dim);
    table->AddColumn("m", m);
    return table;
  }

  const EncryptedDatabase& db() const { return session.encrypted_database("log"); }

  Session session;
  PlainSchema schema;
  std::shared_ptr<Table> initial;
};

ClusterConfig TestConfig() {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.job_overhead_seconds = 0;
  cfg.task_overhead_seconds = 0;
  return cfg;
}

TEST(AppendTest, RowCountsGrow) {
  AppendFixture f;
  const size_t before = f.db().table->NumRows();
  const auto batch = f.MakeBatch(300, 6);
  f.session.Append("log", *batch);
  EXPECT_EQ(f.db().table->NumRows(), before + 300);
  EXPECT_EQ(f.session.attached("log").plain->NumRows(), before + 300);
}

TEST(AppendTest, QueriesSeeAppendedRows) {
  AppendFixture f;
  const Cluster cluster(TestConfig());
  const auto batch1 = f.MakeBatch(300, 6);
  const auto batch2 = f.MakeBatch(450, 7);
  f.session.Append("log", *batch1);
  f.session.Append("log", *batch2);

  const auto combined = f.Combined({f.initial, batch1, batch2});
  for (const char* value : {"a", "b", "c", "d"}) {
    Query q;
    q.table = "log";
    q.Sum("m").Count().Where("dim", CmpOp::kEq, std::string(value));
    const ResultSet plain = ExecutePlain(*combined, q, cluster, nullptr, nullptr);
    const ResultSet enc = f.session.Execute(q);
    ASSERT_EQ(enc.rows.size(), 1u) << value;
    EXPECT_EQ(std::get<int64_t>(enc.rows[0][0]), std::get<int64_t>(plain.rows[0][0])) << value;
    EXPECT_EQ(std::get<int64_t>(enc.rows[0][1]), std::get<int64_t>(plain.rows[0][1])) << value;
  }
}

TEST(AppendTest, AsheIdsStayContiguous) {
  AppendFixture f;
  const auto batch = f.MakeBatch(500, 8);
  f.session.Append("log", *batch);

  // A full-table sum over contiguous ids decrypts with ~one run per
  // partition — the append must not fragment the id space.
  Query q;
  q.table = "log";
  q.Sum("m");
  QueryStats stats;
  f.session.Execute(q, &stats);
  EXPECT_LE(stats.prf_calls, 2u * f.session.cluster().num_workers());
}

TEST(AppendTest, EqualizationSurvivesInserts) {
  AppendFixture f;
  for (uint64_t seed = 20; seed < 24; ++seed) {
    const auto batch = f.MakeBatch(250, seed);
    f.session.Append("log", *batch);
  }
  const SplasheLayout* layout = f.session.plan("log").FindSplashe("dim");
  ASSERT_NE(layout, nullptr);
  const auto* det =
      static_cast<const DetColumn*>(f.db().table->GetColumn(layout->DetColumn()).get());
  std::map<uint64_t, uint64_t> freq;
  for (size_t row = 0; row < det->RowCount(); ++row) {
    ++freq[det->Get(row)];
  }
  uint64_t lo = ~0ull;
  uint64_t hi = 0;
  for (const auto& [token, count] : freq) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  // Section 3.5: insertions can skew the equalization, but with a stable
  // distribution the greedy rebalance keeps counts within a small band.
  EXPECT_LE(hi - lo, 4u);
}

}  // namespace
}  // namespace seabed
