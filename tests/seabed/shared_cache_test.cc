// SharedResultCache across sessions: one cache attached to a fleet of
// kCachingSeabed sessions via SessionOptions::cache.shared. A dashboard
// answered cold in session A must be warm in session B, any session's
// Append must invalidate the table for every session, the counters are
// cache-global (identical through every backend's accessors), and the
// epoch fence holds when readers on BOTH sessions race a cross-session
// append sequence (the TSan-relevant variant).
#include "src/seabed/result_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/seabed/caching_backend.h"
#include "src/seabed/session.h"
#include "tests/seabed/test_util.h"

namespace seabed {
namespace {

SessionOptions TestOptions(BackendKind backend) {
  SessionOptions options;
  options.backend = backend;
  options.shards = 2;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  options.planner.expected_rows = 800;
  options.key_seed = 4321;
  return options;
}

std::shared_ptr<Table> MakeFactTable(size_t rows, uint64_t seed) {
  auto table = std::make_shared<Table>("sales");
  auto region = std::make_shared<StringColumn>();
  auto store = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto amount = std::make_shared<Int64Column>();
  Rng rng(seed);
  const char* regions[] = {"na", "eu", "apac"};
  const char* stores[] = {"s1", "s2", "s3", "s4"};
  for (size_t i = 0; i < rows; ++i) {
    region->Append(regions[rng.Below(3)]);
    store->Append(stores[rng.Below(4)]);
    ts->Append(static_cast<int64_t>(rng.Below(100)));
    amount->Append(rng.Range(-100, 1000));
  }
  table->AddColumn("region", region);
  table->AddColumn("store", store);
  table->AddColumn("ts", ts);
  table->AddColumn("amount", amount);
  return table;
}

PlainSchema FactSchema() {
  PlainSchema schema;
  schema.table_name = "sales";
  ValueDistribution regions;
  regions.values = {"na", "eu", "apac"};
  regions.frequencies = {0.34, 0.33, 0.33};
  schema.columns.push_back({"region", ColumnType::kString, true, regions});
  schema.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"amount", ColumnType::kInt64, true, std::nullopt});
  return schema;
}

std::vector<Query> SampleQueries() {
  std::vector<Query> samples;
  {
    Query q;
    q.table = "sales";
    q.Sum("amount").Count();
    q.Where("region", CmpOp::kEq, std::string("na"));
    q.GroupBy("store");
    samples.push_back(q);
  }
  {
    // Teaches the planner `ts` needs an OPE column (RevenueByStore ranges
    // over it).
    Query q;
    q.table = "sales";
    q.Sum("amount").Where("ts", CmpOp::kGe, int64_t{0});
    samples.push_back(q);
  }
  return samples;
}

Query RevenueByStore() {
  Query q;
  q.table = "sales";
  q.Sum("amount", "revenue").Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{10});
  q.GroupBy("store");
  return q;
}

Query RevenueSince(int64_t ts) {
  Query q = RevenueByStore();
  q.filters[0].operand = ts;
  return q;
}

// Two caching sessions over identical data, attached to ONE result cache —
// the proxy-fleet topology the shared cache exists for. `plain_` tracks the
// same appends as the reference answer.
class SharedCacheTest : public ::testing::Test {
 protected:
  void Build(SharedResultCache::Limits limits) {
    shared_ = std::make_shared<SharedResultCache>(limits);
    fact_ = MakeFactTable(800, 99);

    SessionOptions options = TestOptions(BackendKind::kCachingSeabed);
    options.cache.shared = shared_;
    a_ = std::make_unique<Session>(options);
    b_ = std::make_unique<Session>(options);
    plain_ = std::make_unique<Session>(TestOptions(BackendKind::kPlain));
    for (Session* s : {a_.get(), b_.get(), plain_.get()}) {
      s->Attach(CloneTable(*fact_), FactSchema(), SampleQueries());
    }
    backend_a_ = &dynamic_cast<CachingSeabedBackend&>(a_->executor());
    backend_b_ = &dynamic_cast<CachingSeabedBackend&>(b_->executor());
  }

  // Appends one batch everywhere, keeping the fleet's tables identical.
  void AppendEverywhere(const Table& batch) {
    b_->Append("sales", batch);
    a_->Append("sales", batch);
    plain_->Append("sales", batch);
  }

  std::shared_ptr<SharedResultCache> shared_;
  std::shared_ptr<Table> fact_;
  std::unique_ptr<Session> a_, b_, plain_;
  CachingSeabedBackend* backend_a_ = nullptr;
  CachingSeabedBackend* backend_b_ = nullptr;
};

TEST_F(SharedCacheTest, ColdInOneSessionIsWarmInTheOther) {
  Build(SharedResultCache::Limits{});
  const Query q = RevenueByStore();
  const auto reference = RowsAsStrings(plain_->Execute(q));

  QueryStats cold;
  EXPECT_EQ(RowsAsStrings(a_->Execute(q, &cold)), reference);
  EXPECT_FALSE(cold.cache_hit);

  // Session B never ran this query cold — the hit travelled via the cache.
  QueryStats warm;
  EXPECT_EQ(RowsAsStrings(b_->Execute(q, &warm)), reference);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.rows_touched, cold.rows_touched);  // cold-run stats replayed

  // Counters are CACHE-global, not per-session: both backends forward to the
  // one SharedResultCache and must agree with it exactly.
  EXPECT_EQ(shared_->hits(), 1u);
  EXPECT_EQ(shared_->misses(), 1u);
  EXPECT_EQ(shared_->entries(), 1u);
  EXPECT_EQ(backend_a_->hits(), shared_->hits());
  EXPECT_EQ(backend_b_->hits(), shared_->hits());
  EXPECT_EQ(backend_a_->misses(), shared_->misses());
  EXPECT_EQ(backend_b_->misses(), shared_->misses());
  EXPECT_EQ(backend_a_->entries(), backend_b_->entries());
  EXPECT_EQ(backend_a_->cached_bytes(), shared_->bytes());
}

TEST_F(SharedCacheTest, AppendInAnySessionInvalidatesTheWholeFleet) {
  Build(SharedResultCache::Limits{});
  const Query q = RevenueByStore();
  a_->Execute(q);  // warm the fleet
  QueryStats warm;
  b_->Execute(q, &warm);
  ASSERT_TRUE(warm.cache_hit);

  // B ingests; A must NOT keep serving the pre-append answer.
  AppendEverywhere(*MakeFactTable(60, 1234));
  const auto post_append = RowsAsStrings(plain_->Execute(q));
  QueryStats recomputed;
  EXPECT_EQ(RowsAsStrings(a_->Execute(q, &recomputed)), post_append);
  EXPECT_FALSE(recomputed.cache_hit);

  // ...and A's recomputation re-warms B.
  QueryStats rewarmed;
  EXPECT_EQ(RowsAsStrings(b_->Execute(q, &rewarmed)), post_append);
  EXPECT_TRUE(rewarmed.cache_hit);
}

TEST_F(SharedCacheTest, EntryBudgetIsSharedAcrossSessions) {
  SharedResultCache::Limits limits;
  limits.max_entries = 2;
  Build(limits);
  // Three distinct shapes issued round-robin across the fleet can never hold
  // more than the shared budget of two entries.
  a_->Execute(RevenueSince(10));
  b_->Execute(RevenueSince(20));
  a_->Execute(RevenueSince(30));
  EXPECT_EQ(shared_->entries(), 2u);
  // LRU is cache-wide: the oldest shape (ts>=10) was evicted, the newest two
  // are warm from either session.
  QueryStats warm;
  b_->Execute(RevenueSince(30), &warm);
  EXPECT_TRUE(warm.cache_hit);
  QueryStats evicted;
  b_->Execute(RevenueSince(10), &evicted);
  EXPECT_FALSE(evicted.cache_hit);
}

// The threaded variant (TSan target): readers on BOTH sessions race a
// cross-session append sequence. Sessions agree at append boundaries, so
// every observed answer must equal the table at SOME boundary — a stale
// entry surviving another session's invalidation, or a racing miss
// republishing a pre-append result past the epoch fence, would surface as
// an answer outside the staged reference set or as a wrong steady state.
TEST_F(SharedCacheTest, FleetReadersRacingCrossSessionAppendsStayPrefixConsistent) {
  Build(SharedResultCache::Limits{});
  const Query q = RevenueByStore();
  constexpr int kAppends = 8;

  std::vector<std::shared_ptr<Table>> batches;
  std::vector<std::vector<std::string>> references;
  references.push_back(RowsAsStrings(plain_->Execute(q)));
  for (int i = 0; i < kAppends; ++i) {
    batches.push_back(MakeFactTable(40, 5000 + static_cast<uint64_t>(i)));
    plain_->Append("sales", *batches.back());
    references.push_back(RowsAsStrings(plain_->Execute(q)));
  }

  a_->Execute(q);  // the race starts warm
  std::atomic<bool> done{false};
  std::atomic<size_t> inconsistent{0};
  std::vector<std::thread> readers;
  for (Session* session : {a_.get(), b_.get()}) {
    for (int t = 0; t < 2; ++t) {
      readers.emplace_back([&, session] {
        while (!done.load(std::memory_order_acquire)) {
          const std::vector<std::string> got = RowsAsStrings(session->Execute(q));
          if (std::find(references.begin(), references.end(), got) == references.end()) {
            inconsistent.fetch_add(1);
          }
        }
      });
    }
  }
  for (int i = 0; i < kAppends; ++i) {
    // Alternate which session ingests first — every append invalidates for
    // the whole fleet either way.
    Session* first = (i % 2 == 0) ? b_.get() : a_.get();
    Session* second = (i % 2 == 0) ? a_.get() : b_.get();
    first->Append("sales", *batches[static_cast<size_t>(i)]);
    second->Append("sales", *batches[static_cast<size_t>(i)]);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) {
    reader.join();
  }

  EXPECT_EQ(inconsistent.load(), 0u);
  // Steady state: the final table, from both sessions, and warm again.
  EXPECT_EQ(RowsAsStrings(a_->Execute(q)), references.back());
  EXPECT_EQ(RowsAsStrings(b_->Execute(q)), references.back());
  QueryStats warm;
  b_->Execute(q, &warm);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(RowsAsStrings(b_->Execute(q)), references.back());
}

}  // namespace
}  // namespace seabed
