// Direct tests for the scale-out fan-out/merge backend: partitioning
// invariants, disjoint ASHE identifier spaces, per-shard stats, the
// two-round-trip probe path, appends, and joins through the replica. The
// randomized equivalence suite (fuzz_equivalence_test.cc) covers breadth;
// these tests pin the mechanics.
#include "src/seabed/sharded_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/seabed/session.h"

namespace seabed {
namespace {

std::vector<std::string> RowsAsStrings(const ResultSet& r) {
  std::vector<std::string> rows;
  for (const auto& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (const auto* d = std::get_if<double>(&v)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", *d);
        s += buf;
      } else {
        s += ValueToString(v);
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

SessionOptions TestOptions(BackendKind backend, size_t shards) {
  SessionOptions options;
  options.backend = backend;
  options.shards = shards;
  options.planner.expected_rows = 1200;
  options.key_seed = 77;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  return options;
}

class ShardedBackendTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  ShardedBackendTest()
      : plain_(TestOptions(BackendKind::kPlain, 1)),
        sharded_(TestOptions(BackendKind::kShardedSeabed, kShards)) {
    schema_.table_name = "emp";
    schema_.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});

    table_ = std::make_shared<Table>("emp");
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    Rng rng(11);
    const char* stores[] = {"s1", "s2", "s3"};
    for (int i = 0; i < 1200; ++i) {
      store_col->Append(stores[rng.Below(3)]);
      ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
      salary_col->Append(rng.Range(-1000, 100000));
    }
    table_->AddColumn("store", store_col);
    table_->AddColumn("ts", ts_col);
    table_->AddColumn("salary", salary_col);

    for (Session* s : {&plain_, &sharded_}) {
      s->Attach(table_, schema_, Samples());
    }
  }

  static std::vector<Query> Samples() {
    std::vector<Query> samples;
    Query q;
    q.table = "emp";
    q.Sum("salary").Count().Min("ts").Max("ts");
    q.Where("ts", CmpOp::kGe, int64_t{0});
    q.GroupBy("store");
    samples.push_back(q);
    return samples;
  }

  ShardedSeabedBackend& backend() {
    return static_cast<ShardedSeabedBackend&>(sharded_.executor());
  }

  Session plain_;
  Session sharded_;
  PlainSchema schema_;
  std::shared_ptr<Table> table_;
};

TEST_F(ShardedBackendTest, PartitionsCoverEveryRowExactlyOnce) {
  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const size_t rows = backend().shard_database("emp", s).table->NumRows();
    EXPECT_GT(rows, 0u) << "shard " << s << " is empty — hash placement is degenerate";
    total += rows;
  }
  EXPECT_EQ(total, table_->NumRows());
}

TEST_F(ShardedBackendTest, ShardsEncryptIntoDisjointIdentifierSpaces) {
  uint64_t previous_end = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const Table& enc = *backend().shard_database("emp", s).table;
    const auto* col = static_cast<const AsheColumn*>(enc.GetColumn("salary#ashe").get());
    const uint64_t first = col->IdOfRow(0);
    const uint64_t last = col->IdOfRow(col->RowCount() - 1);
    EXPECT_GT(first, previous_end) << "shard " << s << " overlaps the previous shard's ids";
    previous_end = last;
  }
}

TEST_F(ShardedBackendTest, FanOutMatchesPlainAndFillsShardStats) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n").Min("ts", "lo").Max("ts", "hi");
  q.Where("ts", CmpOp::kGe, int64_t{400});

  QueryStats plain_stats, sharded_stats;
  const ResultSet reference = plain_.Execute(q, &plain_stats);
  const ResultSet result = sharded_.Execute(q, &sharded_stats);
  EXPECT_EQ(RowsAsStrings(result), RowsAsStrings(reference));

  EXPECT_EQ(sharded_stats.backend, "sharded-seabed");
  EXPECT_EQ(sharded_stats.rows_touched, plain_stats.rows_touched);
  ASSERT_EQ(sharded_stats.shard_server_seconds.size(), kShards);
  EXPECT_GE(sharded_stats.merge_seconds, 0.0);
  EXPECT_GT(sharded_stats.job.num_tasks, 0u);
  EXPECT_GT(sharded_stats.translate_seconds, 0.0);
  // Simulated latency is the slowest shard (plus merge), not the sum.
  double max_shard = 0;
  for (const double s : sharded_stats.shard_server_seconds) {
    max_shard = std::max(max_shard, s);
  }
  EXPECT_GE(sharded_stats.server_seconds, max_shard);
}

TEST_F(ShardedBackendTest, GroupByMergesGroupsAcrossShards) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.GroupBy("store");
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, nullptr)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
}

TEST_F(ShardedBackendTest, TwoRoundTripQuerySkipsShardsAndStaysCorrect) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{990});  // selective: some shards may miss
  q.needs_two_round_trips = true;
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, nullptr)),
            RowsAsStrings(plain_.Execute(q, nullptr)));

  // A probe that matches nowhere must still produce the SQL zero row.
  Query none = q;
  none.filters.clear();
  none.Where("ts", CmpOp::kGe, int64_t{100000});
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(none, nullptr)),
            RowsAsStrings(plain_.Execute(none, nullptr)));
}

TEST_F(ShardedBackendTest, AppendGrowsEveryShardConsistently) {
  auto batch = std::make_shared<Table>("emp");
  auto store_col = std::make_shared<StringColumn>();
  auto ts_col = std::make_shared<Int64Column>();
  auto salary_col = std::make_shared<Int64Column>();
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    store_col->Append("s1");
    ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
    salary_col->Append(rng.Range(0, 5000));
  }
  batch->AddColumn("store", store_col);
  batch->AddColumn("ts", ts_col);
  batch->AddColumn("salary", salary_col);

  // The sessions share `table_`, so append through exactly one of them; the
  // plain session then executes over the already-grown table.
  const size_t before = table_->NumRows();
  sharded_.Append("emp", *batch);
  EXPECT_EQ(table_->NumRows(), before + 300);

  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    total += backend().shard_database("emp", s).table->NumRows();
  }
  EXPECT_EQ(total, before + 300);

  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.GroupBy("store");
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, nullptr)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
}

// Joins resolve the right side against the full replica on every shard.
TEST(ShardedJoinTest, JoinAggregatesThroughTheReplica) {
  PlainSchema fact_schema;
  fact_schema.table_name = "visits";
  fact_schema.columns.push_back({"url", ColumnType::kInt64, true, std::nullopt});
  fact_schema.columns.push_back({"revenue", ColumnType::kInt64, true, std::nullopt});

  PlainSchema dim_schema;
  dim_schema.table_name = "pages";
  dim_schema.columns.push_back({"url", ColumnType::kInt64, true, std::nullopt});
  dim_schema.columns.push_back({"rank", ColumnType::kInt64, true, std::nullopt});
  dim_schema.columns.push_back({"site", ColumnType::kString, false, std::nullopt});

  auto fact = std::make_shared<Table>("visits");
  auto dim = std::make_shared<Table>("pages");
  {
    auto url = std::make_shared<Int64Column>();
    auto revenue = std::make_shared<Int64Column>();
    Rng rng(5);
    for (int i = 0; i < 900; ++i) {
      url->Append(static_cast<int64_t>(rng.Below(60)));
      revenue->Append(rng.Range(0, 300));
    }
    fact->AddColumn("url", url);
    fact->AddColumn("revenue", revenue);
  }
  {
    auto url = std::make_shared<Int64Column>();
    auto rank = std::make_shared<Int64Column>();
    auto site = std::make_shared<StringColumn>();
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
      url->Append(i);
      rank->Append(rng.Range(1, 100));
      site->Append(i % 2 == 0 ? "a" : "b");
    }
    dim->AddColumn("url", url);
    dim->AddColumn("rank", rank);
    dim->AddColumn("site", site);
  }

  Query join_sample;
  join_sample.table = "visits";
  join_sample.Sum("revenue");
  join_sample.join = Join{"pages", "url", "right:url"};
  Query dim_sample;
  dim_sample.table = "pages";
  dim_sample.Avg("rank");
  dim_sample.join = Join{"visits", "url", "right:url"};

  Session plain(TestOptions(BackendKind::kPlain, 1));
  Session sharded(TestOptions(BackendKind::kShardedSeabed, 3));
  for (Session* s : {&plain, &sharded}) {
    s->Attach(fact, fact_schema, {join_sample});
    s->Attach(dim, dim_schema, {dim_sample});
  }

  Query q = join_sample;
  q.aggregates.clear();
  q.Sum("revenue", "rev").Avg("right:rank", "mean_rank").Count("n");
  q.GroupBy("right:site");

  auto& backend = static_cast<ShardedSeabedBackend&>(sharded.executor());
  EXPECT_EQ(backend.replica_database("pages"), nullptr)
      << "the replica must be built lazily, on the first join";

  EXPECT_EQ(RowsAsStrings(sharded.Execute(q, nullptr)),
            RowsAsStrings(plain.Execute(q, nullptr)));

  // The replica shares column keys with the shard partitions, so its ASHE
  // identifier space must sit above every shard's — pad reuse across the
  // two encryptions of the same table would leak plaintext differences.
  const EncryptedDatabase* replica = backend.replica_database("pages");
  ASSERT_NE(replica, nullptr);
  const auto* replica_rank =
      static_cast<const AsheColumn*>(replica->table->GetColumn("rank#ashe").get());
  for (size_t s = 0; s < backend.num_shards(); ++s) {
    const Table& part = *backend.shard_database("pages", s).table;
    const auto* part_rank = static_cast<const AsheColumn*>(part.GetColumn("rank#ashe").get());
    EXPECT_GT(replica_rank->IdOfRow(0), part_rank->IdOfRow(part_rank->RowCount() - 1))
        << "shard " << s;
  }
}

}  // namespace
}  // namespace seabed
