// Direct tests for the scale-out fan-out/merge backend: partitioning
// invariants, disjoint ASHE identifier spaces, per-shard stats (probe round
// and round two reported separately), the two-round-trip probe path with its
// zero-match short-circuit, intra-shard row-group pruning, appends (batch
// locality), skew-triggered rebalancing, concurrency of Append against
// joins, and joins through the replica. The randomized equivalence suite
// (fuzz_equivalence_test.cc) covers breadth; these tests pin the mechanics.
#include "src/seabed/sharded_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/seabed/session.h"
#include "tests/seabed/test_util.h"

namespace seabed {
namespace {

// A batch over the "emp" schema: `rows` rows of one store with timestamps
// ts_base, ts_base+1, ... (contiguous, so batches land clustered and
// row-group summaries can prune them).
std::shared_ptr<Table> MakeEmpBatch(size_t rows, const std::string& store, int64_t ts_base,
                                    uint64_t seed) {
  auto batch = std::make_shared<Table>("emp");
  auto store_col = std::make_shared<StringColumn>();
  auto ts_col = std::make_shared<Int64Column>();
  auto salary_col = std::make_shared<Int64Column>();
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    store_col->Append(store);
    ts_col->Append(ts_base + static_cast<int64_t>(i));
    salary_col->Append(rng.Range(0, 5000));
  }
  batch->AddColumn("store", store_col);
  batch->AddColumn("ts", ts_col);
  batch->AddColumn("salary", salary_col);
  return batch;
}

SessionOptions TestOptions(BackendKind backend, size_t shards) {
  SessionOptions options;
  options.backend = backend;
  options.shards = shards;
  options.planner.expected_rows = 1200;
  options.key_seed = 77;
  options.cluster.num_workers = 4;
  options.cluster.job_overhead_seconds = 0;
  options.cluster.task_overhead_seconds = 0;
  return options;
}

class ShardedBackendTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  ShardedBackendTest()
      : plain_(TestOptions(BackendKind::kPlain, 1)),
        sharded_(TestOptions(BackendKind::kShardedSeabed, kShards)) {
    schema_.table_name = "emp";
    schema_.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
    schema_.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
    schema_.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});

    table_ = std::make_shared<Table>("emp");
    auto store_col = std::make_shared<StringColumn>();
    auto ts_col = std::make_shared<Int64Column>();
    auto salary_col = std::make_shared<Int64Column>();
    Rng rng(11);
    const char* stores[] = {"s1", "s2", "s3"};
    for (int i = 0; i < 1200; ++i) {
      store_col->Append(stores[rng.Below(3)]);
      ts_col->Append(static_cast<int64_t>(rng.Below(1000)));
      salary_col->Append(rng.Range(-1000, 100000));
    }
    table_->AddColumn("store", store_col);
    table_->AddColumn("ts", ts_col);
    table_->AddColumn("salary", salary_col);

    for (Session* s : {&plain_, &sharded_}) {
      s->Attach(table_, schema_, Samples());
    }
  }

  static std::vector<Query> Samples() {
    std::vector<Query> samples;
    Query q;
    q.table = "emp";
    q.Sum("salary").Count().Min("ts").Max("ts");
    q.Where("ts", CmpOp::kGe, int64_t{0});
    q.GroupBy("store");
    samples.push_back(q);
    return samples;
  }

  ShardedSeabedBackend& backend() {
    return static_cast<ShardedSeabedBackend&>(sharded_.executor());
  }

  Session plain_;
  Session sharded_;
  PlainSchema schema_;
  std::shared_ptr<Table> table_;
};

TEST_F(ShardedBackendTest, PartitionsCoverEveryRowExactlyOnce) {
  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const size_t rows = backend().shard_database("emp", s).table->NumRows();
    EXPECT_GT(rows, 0u) << "shard " << s << " is empty — hash placement is degenerate";
    total += rows;
  }
  EXPECT_EQ(total, table_->NumRows());
}

TEST_F(ShardedBackendTest, ShardsEncryptIntoDisjointIdentifierSpaces) {
  uint64_t previous_end = 0;
  for (size_t s = 0; s < kShards; ++s) {
    const Table& enc = *backend().shard_database("emp", s).table;
    const auto* col = static_cast<const AsheColumn*>(enc.GetColumn("salary#ashe").get());
    const uint64_t first = col->IdOfRow(0);
    const uint64_t last = col->IdOfRow(col->RowCount() - 1);
    EXPECT_GT(first, previous_end) << "shard " << s << " overlaps the previous shard's ids";
    previous_end = last;
  }
}

TEST_F(ShardedBackendTest, FanOutMatchesPlainAndFillsShardStats) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n").Min("ts", "lo").Max("ts", "hi");
  q.Where("ts", CmpOp::kGe, int64_t{400});

  QueryStats plain_stats, sharded_stats;
  const ResultSet reference = plain_.Execute(q, &plain_stats);
  const ResultSet result = sharded_.Execute(q, &sharded_stats);
  EXPECT_EQ(RowsAsStrings(result), RowsAsStrings(reference));

  EXPECT_EQ(sharded_stats.backend, "sharded-seabed");
  EXPECT_EQ(sharded_stats.rows_touched, plain_stats.rows_touched);
  ASSERT_EQ(sharded_stats.shard_server_seconds.size(), kShards);
  EXPECT_GE(sharded_stats.merge_seconds, 0.0);
  EXPECT_GT(sharded_stats.job.num_tasks, 0u);
  EXPECT_GT(sharded_stats.translate_seconds, 0.0);
  // Simulated latency is the slowest shard (plus merge), not the sum.
  double max_shard = 0;
  for (const double s : sharded_stats.shard_server_seconds) {
    max_shard = std::max(max_shard, s);
  }
  EXPECT_GE(sharded_stats.server_seconds, max_shard);
}

TEST_F(ShardedBackendTest, GroupByMergesGroupsAcrossShards) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.GroupBy("store");
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, nullptr)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
}

TEST_F(ShardedBackendTest, TwoRoundTripQuerySkipsShardsAndStaysCorrect) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{990});  // selective: some shards may miss
  q.needs_two_round_trips = true;
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, nullptr)),
            RowsAsStrings(plain_.Execute(q, nullptr)));

  // A probe that matches nowhere must still produce the SQL zero row.
  Query none = q;
  none.filters.clear();
  none.Where("ts", CmpOp::kGe, int64_t{100000});
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(none, nullptr)),
            RowsAsStrings(plain_.Execute(none, nullptr)));
}

TEST_F(ShardedBackendTest, AppendGrowsEveryShardConsistently) {
  const auto batch = MakeEmpBatch(300, "s1", 0, 23);

  // The sessions share `table_`, so append through exactly one of them; the
  // plain session then executes over the already-grown table.
  const size_t before = table_->NumRows();
  sharded_.Append("emp", *batch);
  EXPECT_EQ(table_->NumRows(), before + 300);

  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    total += backend().shard_database("emp", s).table->NumRows();
  }
  EXPECT_EQ(total, before + 300);

  // Append locality: the whole batch lands on the shard owning its first
  // global row.
  const std::vector<size_t> counts = backend().ShardRowCounts("emp");
  EXPECT_EQ(counts[backend().ShardOfRow(before)],
            backend().shard_database("emp", backend().ShardOfRow(before)).table->NumRows());

  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.GroupBy("store");
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, nullptr)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
}

// Satellite regression: when round one reports no matching shard, round two
// must not fan out at all — no scan job, no touched rows, no shard billing
// round-two time. The merged empty response still decrypts to the SQL zero
// row for global aggregates.
TEST_F(ShardedBackendTest, ZeroMatchProbeShortCircuitsRoundTwo) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{100000});  // matches nothing anywhere
  q.needs_two_round_trips = true;

  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, &stats)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
  EXPECT_TRUE(stats.probe_used);
  EXPECT_EQ(stats.row_groups_pruned, stats.row_groups_total);
  EXPECT_EQ(stats.job.num_tasks, 0u);
  EXPECT_EQ(stats.rows_touched, 0u);
  EXPECT_EQ(stats.merge_seconds, 0.0);

  // Satellite regression: probe-round time reports separately from round
  // two, so the skipped shards must bill zero round-two seconds while the
  // probe round itself shows up in the probe vector.
  ASSERT_EQ(stats.shard_server_seconds.size(), kShards);
  ASSERT_EQ(stats.shard_probe_seconds.size(), kShards);
  for (const double s : stats.shard_server_seconds) {
    EXPECT_EQ(s, 0.0);
  }
  double max_probe = 0;
  for (const double s : stats.shard_probe_seconds) {
    max_probe = std::max(max_probe, s);
  }
  EXPECT_GT(max_probe, 0.0);
  EXPECT_EQ(stats.probe_seconds, max_probe);
}

TEST_F(ShardedBackendTest, ProbeStatsInvariantsHoldOnTheFanOutPath) {
  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{900});
  ExpectProbeStatsInvariants(sharded_, q, RowsAsStrings(plain_.Execute(q, nullptr)));

  Query grouped;
  grouped.table = "emp";
  grouped.Sum("salary", "total");
  grouped.GroupBy("store");
  grouped.needs_two_round_trips = true;
  ExpectProbeStatsInvariants(sharded_, grouped, RowsAsStrings(plain_.Execute(grouped, nullptr)));
}

// Tentpole: round two consults each surviving shard's row-group summary
// index, so pruning happens *inside* shards and the probe stats aggregate
// row groups across the fleet instead of counting shards.
TEST_F(ShardedBackendTest, IntraShardPruningPrunesRowGroupsInsideShards) {
  // A clustered batch lands whole on one shard (append locality), so its
  // rows occupy a contiguous stretch of that shard's row groups; every other
  // group's ORE range ends below the filter bound and must prune.
  const auto batch = MakeEmpBatch(300, "s2", 2000, 31);
  sharded_.Append("emp", *batch);

  ProbeOptions popts;
  popts.mode = ProbeMode::kForced;
  popts.row_group_size = 64;
  sharded_.set_probe_options(popts);

  Query q;
  q.table = "emp";
  q.Sum("salary", "total").Count("n");
  q.Where("ts", CmpOp::kGe, int64_t{2000});
  QueryStats stats;
  EXPECT_EQ(RowsAsStrings(sharded_.Execute(q, &stats)),
            RowsAsStrings(plain_.Execute(q, nullptr)));
  EXPECT_TRUE(stats.probe_used);
  EXPECT_GT(stats.row_groups_total, kShards);  // row groups, not shards
  EXPECT_GT(stats.row_groups_pruned, 0u);
  EXPECT_LT(stats.row_groups_pruned, stats.row_groups_total);
  EXPECT_EQ(stats.rows_touched, 300u);
  sharded_.set_probe_options(ProbeOptions{});
}

// Appends a batch that lands on shard `target`: append locality places a
// batch on ShardOfRow(first global row), so 1-row filler batches advance the
// global row count until the placement hash points at the target. Every
// session in `sessions` ingests the same batches (fillers included), keeping
// them comparable.
void AppendSteered(const std::vector<Session*>& sessions, const ShardedSeabedBackend& backend,
                   size_t* total_rows, size_t target, const Table& batch, uint64_t seed) {
  size_t guard = 0;
  while (backend.ShardOfRow(*total_rows) != target) {
    const auto filler = MakeEmpBatch(1, "s3", 0, seed * 131 + guard);
    for (Session* s : sessions) {
      s->Append("emp", *filler);
    }
    *total_rows += 1;
    ASSERT_LT(++guard, 64u) << "placement hash never reached shard " << target;
  }
  for (Session* s : sessions) {
    s->Append("emp", batch);
  }
  *total_rows += batch.NumRows();
}

// Tentpole: a skewed append stream (every batch steered to one shard) must
// trigger whole-row-group migration once the configured skew ratio is
// exceeded, leave the fleet balanced, keep ASHE identifier spaces disjoint
// (donor remainders re-encrypt into fresh slots), and change no answer.
TEST(ShardRebalanceTest, SkewedAppendsTriggerMigrationAndStayCorrect) {
  constexpr size_t kShards = 4;
  SessionOptions rebal_options = TestOptions(BackendKind::kShardedSeabed, kShards);
  rebal_options.shards_rebalance.enabled = true;
  rebal_options.shards_rebalance.max_skew_ratio = 1.3;
  rebal_options.shards_rebalance.row_group_size = 128;

  Session plain(TestOptions(BackendKind::kPlain, 1));
  Session skewed(TestOptions(BackendKind::kShardedSeabed, kShards));
  Session rebalanced(std::move(rebal_options));

  const auto seed_table = MakeEmpBatch(400, "s1", 0, 7);
  PlainSchema schema;
  schema.table_name = "emp";
  schema.columns.push_back({"store", ColumnType::kString, true, std::nullopt});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"salary", ColumnType::kInt64, true, std::nullopt});
  std::vector<Query> samples;
  {
    Query q;
    q.table = "emp";
    q.Sum("salary").Count().Min("ts").Max("ts");
    q.Where("ts", CmpOp::kGe, int64_t{0});
    q.GroupBy("store");
    samples.push_back(q);
  }
  const std::vector<Session*> sessions = {&plain, &skewed, &rebalanced};
  for (Session* s : sessions) {
    s->Attach(CloneTable(*seed_table), schema, samples);
  }

  auto& skewed_backend = static_cast<ShardedSeabedBackend&>(skewed.executor());
  auto& rebal_backend = static_cast<ShardedSeabedBackend&>(rebalanced.executor());

  // Ten 400-row batches, all steered onto one shard: the unbalanced fleet
  // ends up with one hot shard holding the lion's share.
  size_t total_rows = seed_table->NumRows();
  const size_t hot = skewed_backend.ShardOfRow(total_rows);
  for (uint64_t b = 0; b < 10; ++b) {
    const auto batch = MakeEmpBatch(400, b % 2 == 0 ? "s1" : "s2",
                                    static_cast<int64_t>(1000 + b * 400), 100 + b);
    AppendSteered(sessions, skewed_backend, &total_rows, hot, *batch, b);
  }

  const std::vector<size_t> skewed_counts = skewed_backend.ShardRowCounts("emp");
  const std::vector<size_t> rebal_counts = rebal_backend.ShardRowCounts("emp");
  const size_t skewed_max = *std::max_element(skewed_counts.begin(), skewed_counts.end());
  const size_t rebal_max = *std::max_element(rebal_counts.begin(), rebal_counts.end());
  const size_t total = total_rows;
  EXPECT_GT(skewed_max, (total * 3) / 4) << "the stream was not actually skewed";
  // Rebalancing must hold the largest shard near the configured ratio (one
  // row-group of slack: moves are whole groups).
  EXPECT_LE(rebal_max, static_cast<size_t>(1.3 * static_cast<double>(total) / kShards) + 128);

  const std::optional<RebalanceStats> stats = rebalanced.rebalance_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->rebalances, 0u);
  EXPECT_GT(stats->rows_moved, 0u);
  EXPECT_GT(stats->row_groups_moved, 0u);
  EXPECT_GT(stats->rows_reencrypted, 0u);
  EXPECT_EQ(skewed.rebalance_stats()->rebalances, 0u);

  // Identifier spaces stay disjoint after migration: no ASHE identifier of
  // the salary column appears in two shard partitions (pad reuse across
  // coexisting ciphertexts would leak plaintext differences).
  std::set<uint64_t> seen_ids;
  for (size_t s = 0; s < kShards; ++s) {
    const Table& part = *rebal_backend.shard_database("emp", s).table;
    const auto* col = static_cast<const AsheColumn*>(part.GetColumn("salary#ashe").get());
    for (size_t row = 0; row < col->RowCount(); ++row) {
      EXPECT_TRUE(seen_ids.insert(col->IdOfRow(row)).second)
          << "id " << col->IdOfRow(row) << " reused in shard " << s;
    }
  }

  // Every answer is unchanged by the migration — including pruned two-round
  // execution over the moved row groups.
  std::vector<Query> queries;
  {
    Query q;
    q.table = "emp";
    q.Sum("salary", "total").Count("n");
    queries.push_back(q);
    Query g = q;
    g.GroupBy("store");
    queries.push_back(g);
    Query r = q;
    r.Where("ts", CmpOp::kGe, int64_t{3000});
    r.needs_two_round_trips = true;
    queries.push_back(r);
    Query m;
    m.table = "emp";
    m.Min("ts", "lo").Max("ts", "hi");
    queries.push_back(m);
  }
  for (const Query& q : queries) {
    const auto reference = RowsAsStrings(plain.Execute(q, nullptr));
    EXPECT_EQ(RowsAsStrings(skewed.Execute(q, nullptr)), reference);
    EXPECT_EQ(RowsAsStrings(rebalanced.Execute(q, nullptr)), reference);
    ExpectProbeStatsInvariants(rebalanced, q, reference);
  }
}

// Satellite regression: Append used to mutate the join replica (and the
// shard partitions) in place, racing a concurrent join fan-out on column
// growth. Appends now build an immutable successor version off to the side
// and publish it atomically; Execute pins its version through an epoch guard
// and runs lock-free. This test drives both paths from two threads, checks
// the final answers, and — the tentpole's observable claim — asserts via
// wall-clock spans that appends EXECUTED WHILE queries executed instead of
// serializing behind them (runs in the fast tier, so the ASan/UBSan and
// TSan CI jobs cover it).
TEST(ShardedConcurrencyTest, AppendDuringJoinQueriesIsSafe) {
  PlainSchema fact_schema;
  fact_schema.table_name = "visits";
  fact_schema.columns.push_back({"url", ColumnType::kInt64, true, std::nullopt});
  fact_schema.columns.push_back({"revenue", ColumnType::kInt64, true, std::nullopt});
  PlainSchema dim_schema;
  dim_schema.table_name = "pages";
  dim_schema.columns.push_back({"url", ColumnType::kInt64, true, std::nullopt});
  dim_schema.columns.push_back({"rank", ColumnType::kInt64, true, std::nullopt});

  auto make_fact = [](size_t rows, uint64_t seed) {
    auto t = std::make_shared<Table>("visits");
    auto url = std::make_shared<Int64Column>();
    auto revenue = std::make_shared<Int64Column>();
    Rng rng(seed);
    for (size_t i = 0; i < rows; ++i) {
      url->Append(static_cast<int64_t>(rng.Below(40)));
      revenue->Append(rng.Range(0, 300));
    }
    t->AddColumn("url", url);
    t->AddColumn("revenue", revenue);
    return t;
  };
  auto make_dim = [](size_t rows, uint64_t seed) {
    auto t = std::make_shared<Table>("pages");
    auto url = std::make_shared<Int64Column>();
    auto rank = std::make_shared<Int64Column>();
    Rng rng(seed);
    for (size_t i = 0; i < rows; ++i) {
      url->Append(static_cast<int64_t>(i % 40));
      rank->Append(rng.Range(1, 100));
    }
    t->AddColumn("url", url);
    t->AddColumn("rank", rank);
    return t;
  };

  Query join_sample;
  join_sample.table = "visits";
  join_sample.Sum("revenue").Avg("right:rank");
  join_sample.join = Join{"pages", "url", "right:url"};
  Query dim_sample;
  dim_sample.table = "pages";
  dim_sample.Sum("rank");
  dim_sample.join = Join{"visits", "url", "right:url"};

  SessionOptions options = TestOptions(BackendKind::kShardedSeabed, 3);
  options.shards_rebalance.enabled = true;  // migrations join the party too
  options.shards_rebalance.max_skew_ratio = 1.2;
  options.shards_rebalance.row_group_size = 64;
  Session sharded(std::move(options));
  Session plain(TestOptions(BackendKind::kPlain, 1));
  for (Session* s : {&sharded, &plain}) {
    s->Attach(make_fact(600, 3), fact_schema, {join_sample});
    s->Attach(make_dim(40, 4), dim_schema, {dim_sample});
  }

  Query q = join_sample;
  q.aggregates.clear();
  q.Sum("revenue", "rev").Avg("right:rank", "mean_rank").Count("n");
  sharded.Execute(q, nullptr);  // builds the replica before the race starts

  constexpr int kIterations = 12;
  using TimePoint = std::chrono::steady_clock::time_point;
  std::vector<std::pair<TimePoint, TimePoint>> query_spans(kIterations);
  std::vector<std::pair<TimePoint, TimePoint>> append_spans;
  append_spans.reserve(2 * kIterations);
  // Snapshot appends on batches this small finish in tens of microseconds —
  // far less than one join query (~tens of milliseconds) and less than the
  // reader thread's wakeup latency. To actually exercise the race (and to
  // observe the overlap the tentpole promises), each append waits until the
  // reader is inside Execute before firing: the append then lands wholly
  // within a query span, which the old reader/writer lock made impossible.
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  std::thread reader([&] {
    for (int i = 0; i < kIterations; ++i) {
      started.fetch_add(1, std::memory_order_release);
      query_spans[i].first = std::chrono::steady_clock::now();
      sharded.Execute(q, nullptr);
      query_spans[i].second = std::chrono::steady_clock::now();
      finished.fetch_add(1, std::memory_order_release);
    }
  });
  std::vector<std::shared_ptr<Table>> fact_batches, dim_batches;
  for (int i = 0; i < kIterations; ++i) {
    fact_batches.push_back(make_fact(30, 100 + i));
    dim_batches.push_back(make_dim(10, 200 + i));
  }
  auto wait_for_inflight_query = [&] {
    for (;;) {
      const int done = finished.load(std::memory_order_acquire);
      if (started.load(std::memory_order_acquire) > done || done >= kIterations) {
        return;
      }
      std::this_thread::yield();
    }
  };
  for (int i = 0; i < kIterations; ++i) {
    for (const std::string& table : {std::string("visits"), std::string("pages")}) {
      const Table& batch = table == "visits" ? *fact_batches[i] : *dim_batches[i];
      wait_for_inflight_query();
      const TimePoint begin = std::chrono::steady_clock::now();
      sharded.Append(table, batch);
      append_spans.emplace_back(begin, std::chrono::steady_clock::now());
    }
  }
  reader.join();

  // Appends never block queries, observed: some append's wall-clock span
  // must overlap some query's — under the old reader/writer lock every
  // append strictly followed or preceded every query.
  size_t overlaps = 0;
  for (const auto& [qb, qe] : query_spans) {
    for (const auto& [ab, ae] : append_spans) {
      if (ab < qe && qb < ae) {
        ++overlaps;
      }
    }
  }
  EXPECT_GT(overlaps, 0u);

  // The plain session ingests the same batches serially; final answers must
  // agree once the dust settles.
  for (int i = 0; i < kIterations; ++i) {
    plain.Append("visits", *fact_batches[i]);
    plain.Append("pages", *dim_batches[i]);
  }
  EXPECT_EQ(RowsAsStrings(sharded.Execute(q, nullptr)),
            RowsAsStrings(plain.Execute(q, nullptr)));
}

// Joins resolve the right side against the full replica on every shard.
TEST(ShardedJoinTest, JoinAggregatesThroughTheReplica) {
  PlainSchema fact_schema;
  fact_schema.table_name = "visits";
  fact_schema.columns.push_back({"url", ColumnType::kInt64, true, std::nullopt});
  fact_schema.columns.push_back({"revenue", ColumnType::kInt64, true, std::nullopt});

  PlainSchema dim_schema;
  dim_schema.table_name = "pages";
  dim_schema.columns.push_back({"url", ColumnType::kInt64, true, std::nullopt});
  dim_schema.columns.push_back({"rank", ColumnType::kInt64, true, std::nullopt});
  dim_schema.columns.push_back({"site", ColumnType::kString, false, std::nullopt});

  auto fact = std::make_shared<Table>("visits");
  auto dim = std::make_shared<Table>("pages");
  {
    auto url = std::make_shared<Int64Column>();
    auto revenue = std::make_shared<Int64Column>();
    Rng rng(5);
    for (int i = 0; i < 900; ++i) {
      url->Append(static_cast<int64_t>(rng.Below(60)));
      revenue->Append(rng.Range(0, 300));
    }
    fact->AddColumn("url", url);
    fact->AddColumn("revenue", revenue);
  }
  {
    auto url = std::make_shared<Int64Column>();
    auto rank = std::make_shared<Int64Column>();
    auto site = std::make_shared<StringColumn>();
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
      url->Append(i);
      rank->Append(rng.Range(1, 100));
      site->Append(i % 2 == 0 ? "a" : "b");
    }
    dim->AddColumn("url", url);
    dim->AddColumn("rank", rank);
    dim->AddColumn("site", site);
  }

  Query join_sample;
  join_sample.table = "visits";
  join_sample.Sum("revenue");
  join_sample.join = Join{"pages", "url", "right:url"};
  Query dim_sample;
  dim_sample.table = "pages";
  dim_sample.Avg("rank");
  dim_sample.join = Join{"visits", "url", "right:url"};

  Session plain(TestOptions(BackendKind::kPlain, 1));
  Session sharded(TestOptions(BackendKind::kShardedSeabed, 3));
  for (Session* s : {&plain, &sharded}) {
    s->Attach(fact, fact_schema, {join_sample});
    s->Attach(dim, dim_schema, {dim_sample});
  }

  Query q = join_sample;
  q.aggregates.clear();
  q.Sum("revenue", "rev").Avg("right:rank", "mean_rank").Count("n");
  q.GroupBy("right:site");

  auto& backend = static_cast<ShardedSeabedBackend&>(sharded.executor());
  EXPECT_EQ(backend.replica_database("pages"), nullptr)
      << "the replica must be built lazily, on the first join";

  EXPECT_EQ(RowsAsStrings(sharded.Execute(q, nullptr)),
            RowsAsStrings(plain.Execute(q, nullptr)));

  // The replica shares column keys with the shard partitions, so its ASHE
  // identifier space must sit above every shard's — pad reuse across the
  // two encryptions of the same table would leak plaintext differences.
  const EncryptedDatabase* replica = backend.replica_database("pages");
  ASSERT_NE(replica, nullptr);
  const auto* replica_rank =
      static_cast<const AsheColumn*>(replica->table->GetColumn("rank#ashe").get());
  for (size_t s = 0; s < backend.num_shards(); ++s) {
    const Table& part = *backend.shard_database("pages", s).table;
    const auto* part_rank = static_cast<const AsheColumn*>(part.GetColumn("rank#ashe").get());
    EXPECT_GT(replica_rank->IdOfRow(0), part_rank->IdOfRow(part_rank->RowCount() - 1))
        << "shard " << s;
  }
}

}  // namespace
}  // namespace seabed
