#include "src/encoding/lz.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace seabed {
namespace {

class LzLevelTest : public ::testing::TestWithParam<LzLevel> {};

TEST_P(LzLevelTest, EmptyInput) {
  const Bytes out = LzCompress({}, GetParam());
  EXPECT_TRUE(LzDecompress(out).empty());
}

TEST_P(LzLevelTest, SingleByte) {
  const Bytes input = {0x42};
  EXPECT_EQ(LzDecompress(LzCompress(input, GetParam())), input);
}

TEST_P(LzLevelTest, HighlyRepetitiveCompresses) {
  Bytes input(100000, 0xaa);
  const Bytes packed = LzCompress(input, GetParam());
  EXPECT_EQ(LzDecompress(packed), input);
  EXPECT_LT(packed.size(), input.size() / 50);
}

TEST_P(LzLevelTest, RandomDataRoundTrips) {
  Rng rng(3);
  Bytes input(50000);
  for (auto& b : input) {
    b = static_cast<uint8_t>(rng.Next());
  }
  EXPECT_EQ(LzDecompress(LzCompress(input, GetParam())), input);
}

TEST_P(LzLevelTest, StructuredDataRoundTrips) {
  // Varint-style deltas — the actual payload shape of Seabed ID lists.
  Rng rng(4);
  Bytes input;
  for (int i = 0; i < 20000; ++i) {
    input.push_back(static_cast<uint8_t>(rng.Below(4)));
    input.push_back(1);
  }
  const Bytes packed = LzCompress(input, GetParam());
  EXPECT_EQ(LzDecompress(packed), input);
  EXPECT_LT(packed.size(), input.size());
}

TEST_P(LzLevelTest, OverlappingMatchSelfReference) {
  // "abcabcabc..." forces distance-3 matches longer than the distance.
  Bytes input;
  for (int i = 0; i < 3000; ++i) {
    input.push_back(static_cast<uint8_t>('a' + i % 3));
  }
  EXPECT_EQ(LzDecompress(LzCompress(input, GetParam())), input);
}

INSTANTIATE_TEST_SUITE_P(Levels, LzLevelTest,
                         ::testing::Values(LzLevel::kFast, LzLevel::kCompact),
                         [](const auto& info) {
                           return info.param == LzLevel::kFast ? "Fast" : "Compact";
                         });

TEST(LzTest, CompactIsAtLeastAsSmallOnRedundantData) {
  Rng rng(5);
  Bytes input;
  // Long-range redundancy: repeat a 100 KiB block (outside the fast window).
  Bytes block(100000);
  for (auto& b : block) {
    b = static_cast<uint8_t>(rng.Below(16));
  }
  input.insert(input.end(), block.begin(), block.end());
  input.insert(input.end(), block.begin(), block.end());
  const size_t fast = LzCompress(input, LzLevel::kFast).size();
  const size_t compact = LzCompress(input, LzLevel::kCompact).size();
  EXPECT_LE(compact, fast);
}

}  // namespace
}  // namespace seabed
