#include "src/encoding/bitmap.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace seabed {
namespace {

TEST(BitmapTest, EmptySet) {
  const Bytes out = BitmapEncode(IdSet());
  EXPECT_TRUE(BitmapDecode(out).Empty());
}

TEST(BitmapTest, SingleId) {
  const IdSet s = IdSet::Single(1234567);
  EXPECT_EQ(BitmapDecode(BitmapEncode(s)), s);
}

TEST(BitmapTest, DenseRange) {
  const IdSet s = IdSet::FromRange(100, 1000);
  EXPECT_EQ(BitmapDecode(BitmapEncode(s)), s);
}

TEST(BitmapTest, SparseRandomSet) {
  Rng rng(1);
  IdSet s;
  uint64_t id = 1;
  for (int i = 0; i < 500; ++i) {
    id += 1 + rng.Below(50);
    s.Add(id);
  }
  EXPECT_EQ(BitmapDecode(BitmapEncode(s)), s);
}

TEST(BitmapTest, SizeIsWidthDriven) {
  // Two ids far apart cost the whole span — the reason the paper dropped
  // bitmaps for sparse selections.
  IdSet sparse;
  sparse.Add(1);
  sparse.Add(800001);
  const Bytes bytes = BitmapEncode(sparse);
  EXPECT_GT(bytes.size(), 100000u / 8 * 7);
}

// SelectionBitmap edge cases: the scan kernels rely on the tail-mask
// invariant (bits >= size() stay zero) and on AND-only semantics.

TEST(SelectionBitmapTest, TailMaskLengthsNotMultipleOf64) {
  for (const size_t bits : {1u, 63u, 64u, 65u, 127u, 129u, 4095u}) {
    SelectionBitmap sel(bits, /*all_set=*/true);
    EXPECT_EQ(sel.Count(), bits) << bits;
    // Every bit past the end must be zero in the tail word.
    if (bits % 64 != 0) {
      const uint64_t tail = sel.words()[sel.num_words() - 1];
      EXPECT_EQ(tail & ~SelectionBitmap::TailMask(bits), 0u) << bits;
    }
    size_t seen = 0;
    sel.ForEachSet([&](size_t i) {
      EXPECT_LT(i, bits);
      ++seen;
    });
    EXPECT_EQ(seen, bits) << bits;
  }
}

TEST(SelectionBitmapTest, TailSurvivesGarbageAnd) {
  // A kernel may write garbage ones above size() into a word it ANDs in —
  // as long as the destination tail is masked, ANDing can never resurrect
  // an out-of-range bit.
  SelectionBitmap sel(70, /*all_set=*/true);
  SelectionBitmap other(70, /*all_set=*/true);
  other.words()[1] = ~uint64_t{0};  // garbage beyond bit 70
  sel.And(other);
  EXPECT_EQ(sel.Count(), 70u);
  EXPECT_EQ(sel.words()[1] & ~SelectionBitmap::TailMask(70), 0u);
}

TEST(SelectionBitmapTest, EmptySelection) {
  SelectionBitmap sel(100, /*all_set=*/false);
  EXPECT_FALSE(sel.Any());
  EXPECT_EQ(sel.Count(), 0u);
  size_t seen = 0;
  sel.ForEachSet([&](size_t) { ++seen; });
  EXPECT_EQ(seen, 0u);

  SelectionBitmap zero(0, /*all_set=*/true);
  EXPECT_FALSE(zero.Any());
  EXPECT_EQ(zero.Count(), 0u);
}

TEST(SelectionBitmapTest, AllSetSelection) {
  SelectionBitmap sel(256, /*all_set=*/true);
  EXPECT_TRUE(sel.Any());
  EXPECT_EQ(sel.Count(), 256u);
  size_t expect = 0;
  sel.ForEachSet([&](size_t i) { EXPECT_EQ(i, expect++); });
  EXPECT_EQ(expect, 256u);
}

TEST(SelectionBitmapTest, AndCombinesEqualLengths) {
  SelectionBitmap a(130, /*all_set=*/false);
  SelectionBitmap b(130, /*all_set=*/false);
  for (size_t i = 0; i < 130; i += 2) {
    a.Set(i);  // evens
  }
  for (size_t i = 0; i < 130; i += 3) {
    b.Set(i);  // multiples of 3
  }
  a.And(b);
  for (size_t i = 0; i < 130; ++i) {
    EXPECT_EQ(a.Test(i), i % 6 == 0) << i;
  }
}

TEST(SelectionBitmapTest, RetainClearsRejectedBits) {
  SelectionBitmap sel(100, /*all_set=*/true);
  sel.Retain([](size_t i) { return i % 7 == 0; });
  EXPECT_EQ(sel.Count(), 15u);  // 0, 7, ..., 98
  sel.ForEachSet([](size_t i) { EXPECT_EQ(i % 7, 0u); });
}

TEST(SelectionBitmapTest, ResetReusesStorageAndRedimensions) {
  SelectionBitmap sel(4096, /*all_set=*/true);
  sel.Reset(10, /*all_set=*/true);
  EXPECT_EQ(sel.size(), 10u);
  EXPECT_EQ(sel.Count(), 10u);
  sel.Reset(65, /*all_set=*/false);
  EXPECT_EQ(sel.Count(), 0u);
  sel.Set(64);
  EXPECT_TRUE(sel.Test(64));
  EXPECT_EQ(sel.Count(), 1u);
}

}  // namespace
}  // namespace seabed
