#include "src/encoding/bitmap.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace seabed {
namespace {

TEST(BitmapTest, EmptySet) {
  const Bytes out = BitmapEncode(IdSet());
  EXPECT_TRUE(BitmapDecode(out).Empty());
}

TEST(BitmapTest, SingleId) {
  const IdSet s = IdSet::Single(1234567);
  EXPECT_EQ(BitmapDecode(BitmapEncode(s)), s);
}

TEST(BitmapTest, DenseRange) {
  const IdSet s = IdSet::FromRange(100, 1000);
  EXPECT_EQ(BitmapDecode(BitmapEncode(s)), s);
}

TEST(BitmapTest, SparseRandomSet) {
  Rng rng(1);
  IdSet s;
  uint64_t id = 1;
  for (int i = 0; i < 500; ++i) {
    id += 1 + rng.Below(50);
    s.Add(id);
  }
  EXPECT_EQ(BitmapDecode(BitmapEncode(s)), s);
}

TEST(BitmapTest, SizeIsWidthDriven) {
  // Two ids far apart cost the whole span — the reason the paper dropped
  // bitmaps for sparse selections.
  IdSet sparse;
  sparse.Add(1);
  sparse.Add(800001);
  const Bytes bytes = BitmapEncode(sparse);
  EXPECT_GT(bytes.size(), 100000u / 8 * 7);
}

}  // namespace
}  // namespace seabed
