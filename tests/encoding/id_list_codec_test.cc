#include "src/encoding/id_list_codec.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace seabed {
namespace {

// All eight range/diff/vb combinations × three compression modes.
struct CodecParam {
  bool range;
  bool diff;
  bool vb;
  IdListCompression compression;
};

class IdListCodecTest : public ::testing::TestWithParam<CodecParam> {
 protected:
  IdListOptions Options() const {
    IdListOptions o;
    o.use_range = GetParam().range;
    o.use_diff = GetParam().diff;
    o.use_vb = GetParam().vb;
    o.compression = GetParam().compression;
    return o;
  }

  void ExpectRoundTrip(const IdSet& ids) {
    const Bytes bytes = IdListEncode(ids, Options());
    EXPECT_EQ(IdListDecode(bytes), ids);
  }
};

TEST_P(IdListCodecTest, EmptySet) { ExpectRoundTrip(IdSet()); }

TEST_P(IdListCodecTest, SingleId) { ExpectRoundTrip(IdSet::Single(42)); }

TEST_P(IdListCodecTest, ContiguousRange) { ExpectRoundTrip(IdSet::FromRange(1, 5000)); }

TEST_P(IdListCodecTest, SparseRandom) {
  Rng rng(11);
  IdSet ids;
  uint64_t id = 1;
  for (int i = 0; i < 2000; ++i) {
    id += 1 + rng.Below(100);
    ids.Add(id);
  }
  ExpectRoundTrip(ids);
}

TEST_P(IdListCodecTest, AlternatingEvenIds) {
  IdSet ids;
  for (uint64_t id = 2; id < 4000; id += 2) {
    ids.Add(id);
  }
  ExpectRoundTrip(ids);
}

TEST_P(IdListCodecTest, MultipleRuns) {
  IdSet ids;
  ids.AddRange(1, 100);
  ids.AddRange(200, 250);
  ids.AddRange(1000, 5000);
  ids.Add(99999);
  ExpectRoundTrip(ids);
}

TEST_P(IdListCodecTest, LargeIds) {
  IdSet ids;
  ids.Add(1ull << 60);
  ids.AddRange((1ull << 62), (1ull << 62) + 10);
  ExpectRoundTrip(ids);
}

TEST_P(IdListCodecTest, MultisetCounts) {
  IdSet ids = IdSet::FromRange(1, 10);
  ids.UnionWith(IdSet::FromRange(5, 15));  // multiplicity-2 middle section
  ids.UnionWith(IdSet::FromRange(5, 15));
  ExpectRoundTrip(ids);
}

std::string ParamName(const ::testing::TestParamInfo<CodecParam>& info) {
  std::string name;
  name += info.param.range ? "Range" : "NoRange";
  name += info.param.diff ? "Diff" : "NoDiff";
  name += info.param.vb ? "Vb" : "NoVb";
  switch (info.param.compression) {
    case IdListCompression::kNone:
      name += "Raw";
      break;
    case IdListCompression::kFast:
      name += "Fast";
      break;
    case IdListCompression::kCompact:
      name += "Compact";
      break;
  }
  return name;
}

std::vector<CodecParam> AllParams() {
  std::vector<CodecParam> params;
  for (bool range : {false, true}) {
    for (bool diff : {false, true}) {
      for (bool vb : {false, true}) {
        for (IdListCompression c :
             {IdListCompression::kNone, IdListCompression::kFast, IdListCompression::kCompact}) {
          params.push_back({range, diff, vb, c});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, IdListCodecTest, ::testing::ValuesIn(AllParams()),
                         ParamName);

TEST(IdListCodecSizeTest, RangeEncodingWinsOnDenseSelections) {
  // Selectivity 100%: one run. Range encoding is O(1), id-at-a-time is O(n).
  const IdSet ids = IdSet::FromRange(1, 100000);
  IdListOptions with_range = IdListOptions::Default();
  with_range.compression = IdListCompression::kNone;
  IdListOptions without_range = with_range;
  without_range.use_range = false;
  EXPECT_LT(IdListEncode(ids, with_range).size() * 1000,
            IdListEncode(ids, without_range).size());
}

TEST(IdListCodecSizeTest, DiffHelpsSparseLists) {
  Rng rng(13);
  IdSet ids;
  uint64_t id = 1ull << 40;  // large absolute ids, small gaps
  for (int i = 0; i < 5000; ++i) {
    id += 1 + rng.Below(8);
    ids.Add(id);
  }
  IdListOptions with_diff;
  with_diff.use_range = false;
  with_diff.use_diff = true;
  with_diff.compression = IdListCompression::kNone;
  IdListOptions without_diff = with_diff;
  without_diff.use_diff = false;
  EXPECT_LT(IdListEncode(ids, with_diff).size(), IdListEncode(ids, without_diff).size() / 2);
}

TEST(IdListCodecSizeTest, VbShrinksSmallNumbers) {
  const IdSet ids = IdSet::FromRange(1, 1000);
  IdListOptions vb;
  vb.compression = IdListCompression::kNone;
  IdListOptions fixed = vb;
  fixed.use_vb = false;
  EXPECT_LT(IdListEncode(ids, vb).size(), IdListEncode(ids, fixed).size());
}

TEST(IdListCodecSizeTest, EvenIdPatternCompressesWell) {
  // The paper's observation: all-even selections double the run count but the
  // constant stride makes the diff stream trivially compressible.
  IdSet ids;
  for (uint64_t id = 2; id <= 200000; id += 2) {
    ids.Add(id);
  }
  IdListOptions raw = IdListOptions::Default();
  raw.compression = IdListCompression::kNone;
  IdListOptions packed = IdListOptions::Default();
  packed.compression = IdListCompression::kFast;
  EXPECT_LT(IdListEncode(ids, packed).size(), IdListEncode(ids, raw).size() / 10);
}

TEST(IdListCodecSizeTest, GroupByPresetSkipsRange) {
  const IdListOptions o = IdListOptions::GroupBy();
  EXPECT_FALSE(o.use_range);
  EXPECT_TRUE(o.use_diff);
  EXPECT_TRUE(o.use_vb);
}

TEST(IdListCodecSizeTest, LabelsAreStable) {
  EXPECT_STREQ(IdListOptions::Default().Label(), "Ranges & VB + Diff + Lz(fast)");
  EXPECT_STREQ(IdListOptions::GroupBy().Label(), "Diff&VB (group-by)");
}

}  // namespace
}  // namespace seabed
