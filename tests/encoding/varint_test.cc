#include "src/encoding/varint.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace seabed {
namespace {

TEST(VarintTest, KnownEncodings) {
  Bytes buf;
  PutVarint(buf, 0);
  EXPECT_EQ(buf, (Bytes{0x00}));
  buf.clear();
  PutVarint(buf, 127);
  EXPECT_EQ(buf, (Bytes{0x7f}));
  buf.clear();
  PutVarint(buf, 128);
  EXPECT_EQ(buf, (Bytes{0x80, 0x01}));
  buf.clear();
  PutVarint(buf, 300);
  EXPECT_EQ(buf, (Bytes{0xac, 0x02}));
}

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 32),
                     (1ull << 56) - 1, ~0ull}) {
    Bytes buf;
    PutVarint(buf, v);
    size_t cursor = 0;
    EXPECT_EQ(GetVarint(buf, &cursor), v);
    EXPECT_EQ(cursor, buf.size());
    EXPECT_EQ(VarintSize(v), buf.size());
  }
}

TEST(VarintTest, RandomRoundTripStream) {
  Rng rng(1);
  std::vector<uint64_t> values;
  Bytes buf;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> rng.Below(64);
    values.push_back(v);
    PutVarint(buf, v);
  }
  size_t cursor = 0;
  for (uint64_t v : values) {
    EXPECT_EQ(GetVarint(buf, &cursor), v);
  }
  EXPECT_EQ(cursor, buf.size());
}

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v = 0; v < 128; ++v) {
    EXPECT_EQ(VarintSize(v), 1u);
  }
  EXPECT_EQ(VarintSize(~0ull), 10u);
}

}  // namespace
}  // namespace seabed
