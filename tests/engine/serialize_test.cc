#include "src/engine/serialize.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/crypto/ashe.h"
#include "src/crypto/ore.h"
#include "src/seabed/encryptor.h"
#include "src/seabed/planner.h"

namespace seabed {
namespace {

TEST(SerializeTest, EmptyTable) {
  const Table t("empty");
  const auto restored = DeserializeTable(SerializeTable(t));
  EXPECT_EQ(restored->name(), "empty");
  EXPECT_EQ(restored->NumColumns(), 0u);
}

TEST(SerializeTest, Int64RoundTripWithNegatives) {
  Table t("ints");
  auto col = std::make_shared<Int64Column>();
  Rng rng(1);
  std::vector<int64_t> expected;
  for (int i = 0; i < 1000; ++i) {
    expected.push_back(rng.Range(-1000000, 1000000));
    col->Append(expected.back());
  }
  t.AddColumn("v", col);
  const auto restored = DeserializeTable(SerializeTable(t));
  const auto* rc = static_cast<const Int64Column*>(restored->GetColumn("v").get());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(rc->Get(i), expected[i]) << i;
  }
}

TEST(SerializeTest, SortedIntsCompressWell) {
  // Delta + varint: sorted sequences serialize far below 8 bytes/row.
  Table t("sorted");
  auto col = std::make_shared<Int64Column>();
  for (int64_t i = 0; i < 10000; ++i) {
    col->Append(i * 3);
  }
  t.AddColumn("v", col);
  EXPECT_LT(SerializedTableSize(t), 10000u * 2);
}

TEST(SerializeTest, StringDictionaryRoundTrip) {
  Table t("strings");
  auto col = std::make_shared<StringColumn>();
  const char* values[] = {"apple", "banana", "apple", "", "cherry", "banana"};
  for (const char* v : values) {
    col->Append(v);
  }
  t.AddColumn("s", col);
  const auto restored = DeserializeTable(SerializeTable(t));
  const auto* rc = static_cast<const StringColumn*>(restored->GetColumn("s").get());
  for (size_t i = 0; i < std::size(values); ++i) {
    EXPECT_EQ(rc->Get(i), values[i]);
  }
  EXPECT_EQ(rc->DictionarySize(), 4u);
}

TEST(SerializeTest, EncryptedDatabaseRoundTripsAndStillDecrypts) {
  // Serialize a fully encrypted table (ASHE + DET + ORE + SPLASHE columns),
  // reload it, and check a ciphertext column decrypts identically.
  PlainSchema schema;
  schema.table_name = "t";
  ValueDistribution dist;
  dist.values = {"x", "y", "z"};
  dist.frequencies = {0.6, 0.3, 0.1};
  schema.columns.push_back({"d", ColumnType::kString, true, dist});
  schema.columns.push_back({"ts", ColumnType::kInt64, true, std::nullopt});
  schema.columns.push_back({"m", ColumnType::kInt64, true, std::nullopt});

  auto table = std::make_shared<Table>("t");
  auto d = std::make_shared<StringColumn>();
  auto ts = std::make_shared<Int64Column>();
  auto m = std::make_shared<Int64Column>();
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    d->Append(dist.values[rng.Below(3)]);
    ts->Append(i);
    m->Append(rng.Range(0, 1000));
  }
  table->AddColumn("d", d);
  table->AddColumn("ts", ts);
  table->AddColumn("m", m);

  std::vector<Query> samples;
  Query q;
  q.table = "t";
  q.Sum("m").Where("d", CmpOp::kEq, std::string("z")).Where("ts", CmpOp::kGe, int64_t{0});
  samples.push_back(q);
  PlannerOptions popts;
  popts.expected_rows = 200;
  const EncryptionPlan plan = PlanEncryption(schema, samples, popts);
  const ClientKeys keys = ClientKeys::FromSeed(3);
  const Encryptor encryptor(keys);
  const EncryptedDatabase db = encryptor.Encrypt(*table, schema, plan);

  const Bytes wire = SerializeTable(*db.table);
  const auto restored = DeserializeTable(wire);
  EXPECT_EQ(restored->NumColumns(), db.table->NumColumns());
  EXPECT_EQ(restored->NumRows(), db.table->NumRows());

  // ASHE column decrypts after the round trip.
  const Ashe ashe(keys.DeriveColumnKey(ColumnKeyLabel("t", "m#ashe")));
  const auto* enc_col = static_cast<const AsheColumn*>(restored->GetColumn("m#ashe").get());
  EXPECT_EQ(enc_col->base_id(), 1u);
  for (size_t row = 0; row < 20; ++row) {
    EXPECT_EQ(ashe.DecryptCell(enc_col->Get(row), enc_col->IdOfRow(row)),
              static_cast<uint64_t>(
                  static_cast<const Int64Column*>(table->GetColumn("m").get())->Get(row)));
  }
  // ORE column preserved bit-exactly.
  const auto* ore_orig = static_cast<const OreColumn*>(db.table->GetColumn("ts#ope").get());
  const auto* ore_back = static_cast<const OreColumn*>(restored->GetColumn("ts#ope").get());
  for (size_t row = 0; row < 20; ++row) {
    EXPECT_EQ(ore_back->Get(row), ore_orig->Get(row));
  }
}

TEST(SerializeTest, PaillierColumnRoundTrip) {
  Rng rng(4);
  const Paillier paillier = Paillier::GenerateKey(rng, 128);
  Table t("p");
  auto col = std::make_shared<PaillierColumn>();
  for (int64_t v : {0ll, 42ll, -42ll, 1000000ll}) {
    col->Append(paillier.EncryptSigned(v, rng));
  }
  t.AddColumn("c", col);
  const auto restored = DeserializeTable(SerializeTable(t));
  const auto* rc = static_cast<const PaillierColumn*>(restored->GetColumn("c").get());
  EXPECT_EQ(paillier.DecryptSigned(rc->Get(0)), 0);
  EXPECT_EQ(paillier.DecryptSigned(rc->Get(1)), 42);
  EXPECT_EQ(paillier.DecryptSigned(rc->Get(2)), -42);
  EXPECT_EQ(paillier.DecryptSigned(rc->Get(3)), 1000000);
}

TEST(SerializeTest, RejectsCorruptInput) {
  EXPECT_DEATH(DeserializeTable({1, 2, 3, 4, 5, 6}), "magic");
}

}  // namespace
}  // namespace seabed
