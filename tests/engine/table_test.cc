#include "src/engine/table.h"

#include <gtest/gtest.h>

namespace seabed {
namespace {

std::shared_ptr<Int64Column> MakeInts(std::vector<int64_t> v) {
  return std::make_shared<Int64Column>(std::move(v));
}

TEST(TableTest, AddAndGetColumns) {
  Table t("t");
  t.AddColumn("a", MakeInts({1, 2, 3}));
  t.AddColumn("b", MakeInts({4, 5, 6}));
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_EQ(t.NumRows(), 3u);
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_FALSE(t.HasColumn("c"));
  EXPECT_EQ(static_cast<const Int64Column*>(t.GetColumn("b").get())->Get(1), 5);
}

TEST(TableTest, EmptyTable) {
  Table t("empty");
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.ByteSize(), 0u);
  const auto parts = t.Partitions(4);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 0u);
}

TEST(TableTest, PartitionsCoverAllRowsExactlyOnce) {
  Table t("t");
  t.AddColumn("a", MakeInts(std::vector<int64_t>(1003, 7)));
  for (size_t n : {1u, 2u, 3u, 7u, 100u, 1003u}) {
    const auto parts = t.Partitions(n);
    EXPECT_EQ(parts.size(), n);
    size_t covered = 0;
    size_t prev_end = 0;
    for (const RowRange& r : parts) {
      EXPECT_EQ(r.begin, prev_end);
      covered += r.size();
      prev_end = r.end;
    }
    EXPECT_EQ(covered, 1003u);
  }
}

TEST(TableTest, PartitionsAreBalanced) {
  Table t("t");
  t.AddColumn("a", MakeInts(std::vector<int64_t>(100, 0)));
  const auto parts = t.Partitions(7);
  for (const RowRange& r : parts) {
    EXPECT_GE(r.size(), 100u / 7);
    EXPECT_LE(r.size(), 100u / 7 + 1);
  }
}

TEST(TableTest, MorePartitionsThanRowsClamps) {
  Table t("t");
  t.AddColumn("a", MakeInts({1, 2}));
  EXPECT_EQ(t.Partitions(10).size(), 2u);
}

TEST(TableTest, ByteSizeSumsColumns) {
  Table t("t");
  t.AddColumn("a", MakeInts({1, 2, 3}));
  auto s = std::make_shared<StringColumn>();
  s->Append("xx");
  s->Append("yy");
  s->Append("xx");
  t.AddColumn("b", s);
  EXPECT_EQ(t.ByteSize(), 3 * 8 + t.GetColumn("b")->ByteSize());
}

TEST(StringColumnTest, DictionaryEncoding) {
  StringColumn c;
  c.Append("a");
  c.Append("b");
  c.Append("a");
  EXPECT_EQ(c.RowCount(), 3u);
  EXPECT_EQ(c.DictionarySize(), 2u);
  EXPECT_EQ(c.Get(0), "a");
  EXPECT_EQ(c.Get(2), "a");
  EXPECT_EQ(c.GetCode(0), c.GetCode(2));
  EXPECT_NE(c.GetCode(0), c.GetCode(1));
  EXPECT_EQ(c.Lookup("b"), c.GetCode(1));
  EXPECT_EQ(c.Lookup("zzz"), UINT32_MAX);
}

TEST(AsheColumnTest, IdsAreBasePlusRow) {
  AsheColumn c(100);
  c.Append(0);
  c.Append(0);
  EXPECT_EQ(c.IdOfRow(0), 100u);
  EXPECT_EQ(c.IdOfRow(1), 101u);
  EXPECT_EQ(c.base_id(), 100u);
}

TEST(ColumnTest, TypeNames) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "int64");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kAshe), "ashe");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kPaillier), "paillier");
}

}  // namespace
}  // namespace seabed
