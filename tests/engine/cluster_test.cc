#include "src/engine/cluster.h"

#include <gtest/gtest.h>

#include <atomic>

namespace seabed {
namespace {

ClusterConfig FastConfig(size_t workers) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.job_overhead_seconds = 0.1;
  cfg.task_overhead_seconds = 0.001;
  return cfg;
}

TEST(ClusterTest, RunsEveryTask) {
  const Cluster cluster(FastConfig(4));
  std::vector<std::atomic<int>> hits(37);
  const JobStats stats = cluster.RunJob(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(stats.num_tasks, 37u);
}

TEST(ClusterTest, ZeroTasksCostsJobOverheadOnly) {
  const Cluster cluster(FastConfig(4));
  const JobStats stats = cluster.RunJob(0, [](size_t) {});
  EXPECT_DOUBLE_EQ(stats.server_seconds, 0.1);
}

TEST(ClusterTest, ServerSecondsIncludesOverheads) {
  const Cluster cluster(FastConfig(2));
  const JobStats stats = cluster.RunJob(4, [](size_t) {});
  // 4 tasks round-robin over 2 workers: each worker gets 2 tasks of ~0 compute
  // + 1ms task overhead -> max worker ~2ms, + 100ms job overhead.
  EXPECT_GE(stats.server_seconds, 0.1 + 0.002);
  EXPECT_LT(stats.server_seconds, 0.2);
}

TEST(ClusterTest, MoreWorkersReduceSimulatedLatency) {
  // Busy-spin tasks so measured compute is non-trivial and deterministic-ish.
  auto spin = [](size_t) {
    volatile uint64_t x = 0;
    for (int i = 0; i < 2000000; ++i) {
      x += i;
    }
  };
  const Cluster small(FastConfig(2));
  const Cluster large(FastConfig(8));
  const double t_small = small.RunJob(16, spin).server_seconds;
  const double t_large = large.RunJob(16, spin).server_seconds;
  EXPECT_LT(t_large, t_small);
}

TEST(ClusterTest, WorkerAccountingSumsToTotal) {
  const Cluster cluster(FastConfig(3));
  const JobStats stats = cluster.RunJob(9, [](size_t) {
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) {
      x += i;
    }
  });
  double busy = 0;
  for (double w : stats.worker_seconds) {
    busy += w;
  }
  // Worker busy time = compute + per-task overhead.
  EXPECT_NEAR(busy, stats.total_compute_seconds + 9 * 0.001, 1e-6);
}

TEST(ClusterTest, ShuffleSecondsScalesWithBytes) {
  const Cluster cluster(FastConfig(10));
  const double one_mb = cluster.ShuffleSeconds(1 << 20, 10);
  const double two_mb = cluster.ShuffleSeconds(2 << 20, 10);
  EXPECT_NEAR(two_mb, 2 * one_mb, 1e-9);
}

TEST(ClusterTest, FewReducersBottleneckShuffle) {
  // The Section 4.5 effect: the same bytes over 1 reducer vs 10 reducers.
  const Cluster cluster(FastConfig(10));
  const double narrow = cluster.ShuffleSeconds(10 << 20, 1);
  const double wide = cluster.ShuffleSeconds(10 << 20, 10);
  EXPECT_NEAR(narrow, 10 * wide, 1e-9);
}

TEST(ClusterTest, ShuffleReducersClampedToWorkers) {
  const Cluster cluster(FastConfig(4));
  EXPECT_DOUBLE_EQ(cluster.ShuffleSeconds(1 << 20, 100), cluster.ShuffleSeconds(1 << 20, 4));
}

TEST(ClusterTest, ZeroBytesShuffleIsFree) {
  const Cluster cluster(FastConfig(4));
  EXPECT_DOUBLE_EQ(cluster.ShuffleSeconds(0, 1), 0.0);
}

TEST(NetworkModelTest, TransferSeconds) {
  const NetworkModel fast = NetworkModel::InCluster();
  const NetworkModel slow = NetworkModel::Wan10Mbps();
  EXPECT_LT(fast.TransferSeconds(1 << 20), slow.TransferSeconds(1 << 20));
  // Latency floor applies to tiny transfers.
  EXPECT_GE(slow.TransferSeconds(1), 0.1);
}

}  // namespace
}  // namespace seabed
