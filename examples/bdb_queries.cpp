// Runs the AmpLab Big Data Benchmark query set (Q1A–Q4) end-to-end on
// encrypted tables, printing each query's answer and latency breakdown.
#include <cstdio>

#include "src/seabed/client.h"
#include "src/seabed/planner.h"
#include "src/seabed/server.h"
#include "src/workload/bdb.h"

using namespace seabed;

int main() {
  BdbSpec spec;
  spec.rankings_rows = 20000;
  spec.uservisits_rows = 80000;
  spec.num_urls = 8000;

  std::printf("building BDB tables (rankings=%llu, uservisits=%llu)...\n",
              static_cast<unsigned long long>(spec.rankings_rows),
              static_cast<unsigned long long>(spec.uservisits_rows));
  const auto rankings = MakeRankingsTable(spec);
  const auto uservisits = MakeUserVisitsTable(spec);

  const ClientKeys keys = ClientKeys::FromSeed(17);
  const Encryptor encryptor(keys);
  PlannerOptions popts;
  const EncryptionPlan rankings_plan =
      PlanEncryption(RankingsSchema(), RankingsSampleQueries(), popts);
  const EncryptionPlan uservisits_plan =
      PlanEncryption(UserVisitsSchema(), UserVisitsSampleQueries(), popts);

  std::printf("planner warnings (expected: joins/group-bys/dates fall back):\n");
  for (const auto& w : rankings_plan.warnings) {
    std::printf("  [rankings] %s\n", w.c_str());
  }
  for (const auto& w : uservisits_plan.warnings) {
    std::printf("  [uservisits] %s\n", w.c_str());
  }

  const EncryptedDatabase rankings_db =
      encryptor.Encrypt(*rankings, RankingsSchema(), rankings_plan);
  const EncryptedDatabase uservisits_db =
      encryptor.Encrypt(*uservisits, UserVisitsSchema(), uservisits_plan);
  Server server;
  server.RegisterTable(rankings_db.table);
  server.RegisterTable(uservisits_db.table);

  ClusterConfig cfg;
  cfg.num_workers = 8;
  const Cluster cluster(cfg);

  for (const BdbQuery& bq : BdbQuerySet()) {
    const EncryptedDatabase& db = bq.on_uservisits ? uservisits_db : rankings_db;
    TranslatorOptions topts;
    topts.cluster_workers = cluster.num_workers();
    const Translator translator(db, keys);
    TranslatedQuery tq = translator.Translate(bq.query, topts);
    if (tq.server.join.has_value()) {
      tq.server.join->right_table = rankings_db.table->name();
    }
    const EncryptedResponse response = server.Execute(tq.server, cluster);
    const Client client(db, keys);
    const ResultSet r = client.Decrypt(response, tq, cluster, &rankings_db);

    std::printf("\n=== %s ===  (%zu result rows, %.1f KB shipped, %.3f s total)\n",
                bq.label.c_str(), r.rows.size(), r.result_bytes / 1e3, r.TotalSeconds());
    std::printf("%s", r.ToString(5).c_str());
  }
  return 0;
}
