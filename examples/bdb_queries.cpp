// Runs the AmpLab Big Data Benchmark query set (Q1A–Q4) end-to-end on
// encrypted tables, printing each query's answer and latency breakdown.
// Joined tables are attached to the session like any other table; the JOIN
// clause resolves them by name.
#include <cstdio>

#include "src/seabed/session.h"
#include "src/workload/bdb.h"

int main() {
  seabed::BdbSpec spec;
  spec.rankings_rows = 20000;
  spec.uservisits_rows = 80000;
  spec.num_urls = 8000;

  std::printf("building BDB tables (rankings=%llu, uservisits=%llu)...\n",
              static_cast<unsigned long long>(spec.rankings_rows),
              static_cast<unsigned long long>(spec.uservisits_rows));
  const auto rankings = seabed::MakeRankingsTable(spec);
  const auto uservisits = seabed::MakeUserVisitsTable(spec);

  seabed::SessionOptions options;
  options.backend = seabed::BackendKind::kSeabed;
  options.cluster.num_workers = 8;
  options.key_seed = 17;
  seabed::Session session(options);
  session.Attach(rankings, seabed::RankingsSchema(), seabed::RankingsSampleQueries());
  session.Attach(uservisits, seabed::UserVisitsSchema(), seabed::UserVisitsSampleQueries());

  std::printf("planner warnings (expected: joins/group-bys/dates fall back):\n");
  for (const auto& w : session.plan("rankings").warnings) {
    std::printf("  [rankings] %s\n", w.c_str());
  }
  for (const auto& w : session.plan("uservisits").warnings) {
    std::printf("  [uservisits] %s\n", w.c_str());
  }

  for (const seabed::BdbQuery& bq : seabed::BdbQuerySet()) {
    seabed::QueryStats stats;
    const seabed::ResultSet r = session.Execute(bq.query, &stats);

    std::printf("\n=== %s ===  (%zu result rows, %.1f KB shipped, %.3f s total)\n",
                bq.label.c_str(), r.rows.size(), stats.result_bytes / 1e3,
                stats.TotalSeconds());
    std::printf("%s", r.ToString(5).c_str());
  }
  return 0;
}
