// Ad-analytics scenario (paper Section 6.6): a wide table (33 dimensions,
// 18 measures), a storage budget, and interactive hourly roll-ups.
//
// Shows the planner's storage-budget prioritization (lowest-cardinality
// dimensions get SPLASHE first), the resulting enhanced layouts, and the
// latency breakdown of the paper's 1/4/8-group queries.
#include <cstdio>

#include "src/query/plain_executor.h"
#include "src/seabed/client.h"
#include "src/seabed/planner.h"
#include "src/seabed/server.h"
#include "src/workload/ad_analytics.h"
#include "src/workload/classifier.h"

using namespace seabed;

int main() {
  AdAnalyticsSpec spec;
  spec.rows = 50000;

  std::printf("building ad-analytics table (%llu rows, 33 dims, 18 measures)...\n",
              static_cast<unsigned long long>(spec.rows));
  const auto table = MakeAdAnalyticsTable(spec);
  const PlainSchema schema = AdAnalyticsSchema(spec);

  PlannerOptions popts;
  popts.expected_rows = spec.rows;
  popts.max_storage_expansion = 3.0;
  const EncryptionPlan plan = PlanEncryption(schema, AdAnalyticsSampleQueries(spec), popts);

  std::printf("\n--- SPLASHE layouts chosen under a 3x storage budget ---\n");
  for (const SplasheLayout& layout : plan.splashe) {
    std::printf("  %-8s enhanced=%d  splayed k=%zu of %zu values, %zu co-splayed measures\n",
                layout.dimension.c_str(), layout.enhanced, layout.splayed_values.size(),
                layout.splayed_values.size() + layout.other_values.size(),
                layout.splayed_measures.size());
  }
  std::printf("--- dimensions that fell back (budget / usage) ---\n");
  for (const auto& w : plan.warnings) {
    std::printf("  %s\n", w.c_str());
  }

  const ClientKeys keys = ClientKeys::FromSeed(7);
  const Encryptor encryptor(keys);
  const EncryptedDatabase db = encryptor.Encrypt(*table, schema, plan);
  std::printf("\nstorage: plaintext %.1f MB -> encrypted %.1f MB (%.2fx)\n",
              table->ByteSize() / 1e6, db.table->ByteSize() / 1e6,
              static_cast<double>(db.table->ByteSize()) / table->ByteSize());

  Server server;
  server.RegisterTable(db.table);
  ClusterConfig cfg;
  cfg.num_workers = 16;
  const Cluster cluster(cfg);

  std::printf("\n--- hourly roll-ups (the paper's 1/4/8-group queries) ---\n");
  for (size_t groups : {1, 4, 8}) {
    const Query q = AdAnalyticsPerfQuery(groups, 2, groups);
    TranslatorOptions topts;
    topts.cluster_workers = cluster.num_workers();
    const Translator translator(db, keys);
    const TranslatedQuery tq = translator.Translate(q, topts);
    const EncryptedResponse response = server.Execute(tq.server, cluster);
    const Client client(db, keys);
    const ResultSet enc = client.Decrypt(response, tq, cluster);
    const ResultSet ref = ExecutePlain(*table, q, cluster);
    std::printf("\n%zu-group query -> %zu rows (inflation=%zu, %.1f KB, cross-check %s)\n",
                groups, enc.rows.size(), tq.server.inflation, enc.result_bytes / 1e3,
                enc.rows.size() == ref.rows.size() ? "ok" : "MISMATCH");
    std::printf("%s", enc.ToString(4).c_str());
  }

  // The month-long query log, classified Seabed-style (Table 4).
  const auto log = AdAnalyticsQueryLog(spec, 10000, 2023);
  const CategoryCounts counts = ClassifyAll(log);
  std::printf("\n--- query log sample (%zu queries) ---\n", counts.Total());
  std::printf("server-only %zu | client-pre %zu | client-post %zu | two-RT %zu\n",
              counts.server_only, counts.client_pre, counts.client_post,
              counts.two_round_trips);
  return 0;
}
