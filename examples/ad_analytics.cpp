// Ad-analytics scenario (paper Section 6.6): a wide table (33 dimensions,
// 18 measures), a storage budget, and interactive hourly roll-ups.
//
// Shows the planner's storage-budget prioritization (lowest-cardinality
// dimensions get SPLASHE first), the resulting enhanced layouts, and the
// latency breakdown of the paper's 1/4/8-group queries — all behind one
// Session.
#include <cstdio>

#include "src/query/plain_executor.h"
#include "src/seabed/session.h"
#include "src/workload/ad_analytics.h"
#include "src/workload/classifier.h"

int main() {
  seabed::AdAnalyticsSpec spec;
  spec.rows = 50000;

  std::printf("building ad-analytics table (%llu rows, 33 dims, 18 measures)...\n",
              static_cast<unsigned long long>(spec.rows));
  const auto table = seabed::MakeAdAnalyticsTable(spec);
  const seabed::PlainSchema schema = seabed::AdAnalyticsSchema(spec);

  seabed::SessionOptions options;
  options.backend = seabed::BackendKind::kSeabed;
  options.cluster.num_workers = 16;
  options.planner.expected_rows = spec.rows;
  options.planner.max_storage_expansion = 3.0;
  options.key_seed = 7;
  seabed::Session session(options);
  session.Attach(table, schema, seabed::AdAnalyticsSampleQueries(spec));

  const seabed::EncryptionPlan& plan = session.plan("ad_analytics");
  std::printf("\n--- SPLASHE layouts chosen under a 3x storage budget ---\n");
  for (const seabed::SplasheLayout& layout : plan.splashe) {
    std::printf("  %-8s enhanced=%d  splayed k=%zu of %zu values, %zu co-splayed measures\n",
                layout.dimension.c_str(), layout.enhanced, layout.splayed_values.size(),
                layout.splayed_values.size() + layout.other_values.size(),
                layout.splayed_measures.size());
  }
  std::printf("--- dimensions that fell back (budget / usage) ---\n");
  for (const auto& w : plan.warnings) {
    std::printf("  %s\n", w.c_str());
  }

  const seabed::EncryptedDatabase& db = session.encrypted_database("ad_analytics");
  std::printf("\nstorage: plaintext %.1f MB -> encrypted %.1f MB (%.2fx)\n",
              table->ByteSize() / 1e6, db.table->ByteSize() / 1e6,
              static_cast<double>(db.table->ByteSize()) / table->ByteSize());

  std::printf("\n--- hourly roll-ups (the paper's 1/4/8-group queries) ---\n");
  for (size_t groups : {1, 4, 8}) {
    const seabed::Query q = seabed::AdAnalyticsPerfQuery(groups, 2, groups);
    seabed::QueryStats stats;
    const seabed::ResultSet enc = session.Execute(q, &stats);
    const seabed::ResultSet ref = seabed::ExecutePlain(*table, q, session.cluster(), nullptr, nullptr);
    std::printf("\n%zu-group query -> %zu rows (%.1f KB, cross-check %s)\n",
                groups, enc.rows.size(), stats.result_bytes / 1e3,
                enc.rows.size() == ref.rows.size() ? "ok" : "MISMATCH");
    std::printf("%s", enc.ToString(4).c_str());
  }

  // The month-long query log, classified Seabed-style (Table 4).
  const auto log = seabed::AdAnalyticsQueryLog(spec, 10000, 2023);
  const seabed::CategoryCounts counts = seabed::ClassifyAll(log);
  std::printf("\n--- query log sample (%zu queries) ---\n", counts.Total());
  std::printf("server-only %zu | client-pre %zu | client-post %zu | two-RT %zu\n",
              counts.server_only, counts.client_pre, counts.client_post,
              counts.two_round_trips);
  return 0;
}
