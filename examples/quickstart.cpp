// Quickstart: the full Seabed pipeline on a small retail table, through the
// Session facade.
//
//   1. Describe the plaintext schema (sensitivity + value distributions).
//   2. Attach the table: the planner chooses encryption schemes from sample
//      queries, the encryptor builds the tables the untrusted server stores.
//   3. Issue plaintext queries; the session translates, executes on
//      ciphertexts, and decrypts — one call.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/query/parser.h"
#include "src/query/plain_executor.h"
#include "src/seabed/session.h"

int main() {
  using seabed::BackendKind;
  using seabed::CmpOp;
  using seabed::ColumnType;
  using seabed::EncSchemeName;
  using seabed::MustParseSql;
  using seabed::Query;
  using seabed::QueryStats;
  using seabed::ResultSet;
  using seabed::ValueDistribution;

  // --- 1. plaintext data -------------------------------------------------------
  auto table = std::make_shared<seabed::Table>("retail");
  auto country = std::make_shared<seabed::StringColumn>();
  auto store = std::make_shared<seabed::StringColumn>();
  auto revenue = std::make_shared<seabed::Int64Column>();
  seabed::Rng rng(2024);
  const char* countries[] = {"usa", "canada", "india", "chile"};
  const double cdf[] = {0.5, 0.85, 0.95, 1.0};
  const char* stores[] = {"downtown", "airport", "mall"};
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDouble();
    int pick = 0;
    while (u > cdf[pick]) {
      ++pick;
    }
    country->Append(countries[pick]);
    store->Append(stores[rng.Below(3)]);
    revenue->Append(rng.Range(10, 5000));
  }
  table->AddColumn("country", country);
  table->AddColumn("store", store);
  table->AddColumn("revenue", revenue);

  // --- 2. schema + session ----------------------------------------------------
  seabed::PlainSchema schema;
  schema.table_name = "retail";
  ValueDistribution dist;
  dist.values = {"usa", "canada", "india", "chile"};
  dist.frequencies = {0.5, 0.35, 0.10, 0.05};
  schema.columns.push_back({"country", ColumnType::kString, /*sensitive=*/true, dist});
  schema.columns.push_back({"store", ColumnType::kString, /*sensitive=*/true, std::nullopt});
  schema.columns.push_back({"revenue", ColumnType::kInt64, /*sensitive=*/true, std::nullopt});

  std::vector<Query> samples;
  samples.push_back(MustParseSql(
      "SELECT SUM(revenue), COUNT(*) FROM retail WHERE country = 'india'"));
  samples.push_back(MustParseSql("SELECT SUM(revenue) FROM retail GROUP BY store"));

  seabed::SessionOptions options;
  options.backend = BackendKind::kSeabed;
  options.cluster.num_workers = 8;
  options.planner.expected_rows = 20000;
  options.key_seed = 0xC0FFEE;
  seabed::Session session(options);
  session.Attach(table, schema, samples);  // plan + encrypt + upload

  std::printf("--- encryption plan ---\n");
  const seabed::EncryptionPlan& plan = session.plan("retail");
  for (const auto& [name, cp] : plan.columns) {
    std::printf("  %-10s -> %s\n", name.c_str(), EncSchemeName(cp.scheme));
  }
  for (const auto& w : plan.warnings) {
    std::printf("  warning: %s\n", w.c_str());
  }
  const seabed::EncryptedDatabase& db = session.encrypted_database("retail");
  std::printf("\nencrypted table: %zu columns, %.1f MB (plaintext %.1f MB)\n",
              db.table->NumColumns(), db.table->ByteSize() / 1e6, table->ByteSize() / 1e6);

  // --- 3. query ----------------------------------------------------------------
  auto run = [&](const Query& q, const char* what) {
    QueryStats stats;
    const ResultSet enc = session.Execute(q, &stats);
    const ResultSet ref = seabed::ExecutePlain(*table, q, session.cluster(), nullptr, nullptr);
    std::printf("\n--- %s ---\n%s", what, enc.ToString().c_str());
    std::printf("(%.3f s total, %zu bytes shipped, plaintext cross-check: %s)\n",
                stats.TotalSeconds(), stats.result_bytes,
                enc.rows.size() == ref.rows.size() ? "row count matches" : "MISMATCH");
  };

  // Queries can be written in SQL (parsed by src/query/parser.h) or built
  // with the fluent AST API — both produce the same Query object.
  const Query q1 = MustParseSql(
      "SELECT SUM(revenue) AS total, COUNT(*) AS orders "
      "FROM retail WHERE country = 'india'");
  run(q1, "revenue from India (SQL front-end, SPLASHE-rewritten filter)");

  Query q2;
  q2.table = "retail";
  q2.Sum("revenue", "total").Avg("revenue", "avg");
  q2.GroupBy("store");
  q2.expected_groups = 3;
  run(q2, "revenue by store (DET group-by with inflation)");

  Query q3;
  q3.table = "retail";
  q3.Sum("revenue", "total").Where("country", CmpOp::kEq, std::string("usa"));
  run(q3, "revenue from USA (splayed column, zero server-side predicates)");

  // --- 4. scale out ------------------------------------------------------------
  // The same queries on the sharded backend: rows hash-partition across four
  // servers, the query fans out, and the coordinator merges the encrypted
  // partial results before one client decryption. Same answers, and
  // QueryStats now reports the per-shard breakdown.
  seabed::SessionOptions sharded_options = options;
  sharded_options.backend = BackendKind::kShardedSeabed;
  sharded_options.shards = 4;
  seabed::Session sharded(sharded_options);
  sharded.AttachPlanned(table, schema, plan);  // reuse the planner's output

  QueryStats stats;
  const ResultSet fan_out = sharded.Execute(q2, &stats);
  std::printf("\n--- revenue by store, sharded across %zu servers ---\n%s",
              sharded_options.shards, fan_out.ToString().c_str());
  std::printf("(slowest shard + merge: %.3f s server, merge %.6f s, shards:",
              stats.server_seconds, stats.merge_seconds);
  for (const double s : stats.shard_server_seconds) {
    std::printf(" %.3f", s);
  }
  std::printf(")\n");

  // --- 5. cache the dashboard --------------------------------------------------
  // Dashboards re-issue the same aggregates on every refresh. The caching
  // backend wraps any inner backend (here: the standard Seabed pipeline):
  // the first Execute runs cold and seeds a client-side result cache keyed
  // by the query's fingerprint; repeats are answered without the untrusted
  // server seeing a query at all. Appends invalidate affected entries.
  seabed::SessionOptions caching_options = options;
  caching_options.backend = BackendKind::kCachingSeabed;
  caching_options.cache.inner = BackendKind::kSeabed;
  seabed::Session caching(caching_options);
  caching.AttachPlanned(table, schema, plan);

  QueryStats cold, warm;
  caching.Execute(q1, &cold);
  caching.Execute(q1, &warm);  // same fingerprint: served from the cache
  std::printf("\n--- revenue from India, cold vs warm (caching backend) ---\n");
  std::printf("cold: %.3f s (cache_hit=%d)   warm: %.6f s (cache_hit=%d, lookup %.6f s)\n",
              cold.TotalSeconds(), cold.cache_hit ? 1 : 0, warm.TotalSeconds(),
              warm.cache_hit ? 1 : 0, warm.cache_lookup_seconds);

  return 0;
}
