// Quickstart: the full Seabed pipeline on a small retail table.
//
//   1. Describe the plaintext schema (sensitivity + value distributions).
//   2. Let the planner choose encryption schemes from sample queries.
//   3. Encrypt and "upload" the table to the (untrusted) server.
//   4. Issue plaintext queries; the translator rewrites them, the server
//      executes them on ciphertexts, the client decrypts.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/query/parser.h"
#include "src/query/plain_executor.h"
#include "src/seabed/client.h"
#include "src/seabed/planner.h"
#include "src/seabed/server.h"

using namespace seabed;

int main() {
  // --- 1. plaintext data -------------------------------------------------------
  auto table = std::make_shared<Table>("retail");
  auto country = std::make_shared<StringColumn>();
  auto store = std::make_shared<StringColumn>();
  auto revenue = std::make_shared<Int64Column>();
  Rng rng(2024);
  const char* countries[] = {"usa", "canada", "india", "chile"};
  const double cdf[] = {0.5, 0.85, 0.95, 1.0};
  const char* stores[] = {"downtown", "airport", "mall"};
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDouble();
    int pick = 0;
    while (u > cdf[pick]) {
      ++pick;
    }
    country->Append(countries[pick]);
    store->Append(stores[rng.Below(3)]);
    revenue->Append(rng.Range(10, 5000));
  }
  table->AddColumn("country", country);
  table->AddColumn("store", store);
  table->AddColumn("revenue", revenue);

  // --- 2. schema + planner ----------------------------------------------------
  PlainSchema schema;
  schema.table_name = "retail";
  ValueDistribution dist;
  dist.values = {"usa", "canada", "india", "chile"};
  dist.frequencies = {0.5, 0.35, 0.10, 0.05};
  schema.columns.push_back({"country", ColumnType::kString, /*sensitive=*/true, dist});
  schema.columns.push_back({"store", ColumnType::kString, /*sensitive=*/true, std::nullopt});
  schema.columns.push_back({"revenue", ColumnType::kInt64, /*sensitive=*/true, std::nullopt});

  std::vector<Query> samples;
  {
    Query q;
    q.table = "retail";
    q.Sum("revenue").Count().Where("country", CmpOp::kEq, std::string("india"));
    samples.push_back(q);
    Query g;
    g.table = "retail";
    g.Sum("revenue").GroupBy("store");
    samples.push_back(g);
  }
  PlannerOptions popts;
  popts.expected_rows = 20000;
  const EncryptionPlan plan = PlanEncryption(schema, samples, popts);

  std::printf("--- encryption plan ---\n");
  for (const auto& [name, cp] : plan.columns) {
    std::printf("  %-10s -> %s\n", name.c_str(), EncSchemeName(cp.scheme));
  }
  for (const auto& w : plan.warnings) {
    std::printf("  warning: %s\n", w.c_str());
  }

  // --- 3. encrypt & upload ----------------------------------------------------
  const ClientKeys keys = ClientKeys::FromSeed(0xC0FFEE);
  const Encryptor encryptor(keys);
  const EncryptedDatabase db = encryptor.Encrypt(*table, schema, plan);
  Server server;  // the untrusted side: sees only ciphertexts
  server.RegisterTable(db.table);
  std::printf("\nencrypted table: %zu columns, %.1f MB (plaintext %.1f MB)\n",
              db.table->NumColumns(), db.table->ByteSize() / 1e6, table->ByteSize() / 1e6);

  // --- 4. query ----------------------------------------------------------------
  ClusterConfig cfg;
  cfg.num_workers = 8;
  const Cluster cluster(cfg);

  auto run = [&](const Query& q, const char* what) {
    TranslatorOptions topts;
    topts.cluster_workers = cluster.num_workers();
    const Translator translator(db, keys);
    const TranslatedQuery tq = translator.Translate(q, topts);
    const EncryptedResponse response = server.Execute(tq.server, cluster);
    const Client client(db, keys);
    const ResultSet enc = client.Decrypt(response, tq, cluster);
    const ResultSet ref = ExecutePlain(*table, q, cluster);
    std::printf("\n--- %s ---\n%s", what, enc.ToString().c_str());
    std::printf("(plaintext cross-check: %s)\n",
                enc.rows.size() == ref.rows.size() ? "row count matches" : "MISMATCH");
  };

  // Queries can be written in SQL (parsed by src/query/parser.h) or built
  // with the fluent AST API — both produce the same Query object.
  const Query q1 = MustParseSql(
      "SELECT SUM(revenue) AS total, COUNT(*) AS orders "
      "FROM retail WHERE country = 'india'");
  run(q1, "revenue from India (SQL front-end, SPLASHE-rewritten filter)");

  Query q2;
  q2.table = "retail";
  q2.Sum("revenue", "total").Avg("revenue", "avg");
  q2.GroupBy("store");
  q2.expected_groups = 3;
  run(q2, "revenue by store (DET group-by with inflation)");

  Query q3;
  q3.table = "retail";
  q3.Sum("revenue", "total").Where("country", CmpOp::kEq, std::string("usa"));
  run(q3, "revenue from USA (splayed column, zero server-side predicates)");

  return 0;
}
