// SPLASHE demo: why deterministic encryption leaks and how SPLASHE closes
// the leak (paper Sections 3.3–3.4 and Naveed et al.'s frequency attack).
//
// The demo encrypts the same skewed "country" column twice — once with plain
// DET, once with enhanced SPLASHE (via a Session) — then plays the
// adversary: it histograms the ciphertexts and tries to match them to a
// public auxiliary distribution.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/crypto/det.h"
#include "src/seabed/session.h"

int main() {
  using seabed::AesKey;
  using seabed::CmpOp;
  using seabed::ColumnType;
  using seabed::DetToken;
  using seabed::Query;
  using seabed::ValueDistribution;

  constexpr int kRows = 50000;
  const std::vector<std::string> values = {"usa", "canada", "india", "chile", "iraq", "japan"};
  const std::vector<double> freq = {0.40, 0.30, 0.12, 0.08, 0.06, 0.04};

  seabed::Rng rng(99);
  std::vector<std::string> column;
  std::vector<double> cdf(freq.size());
  double acc = 0;
  for (size_t i = 0; i < freq.size(); ++i) {
    acc += freq[i];
    cdf[i] = acc;
  }
  for (int i = 0; i < kRows; ++i) {
    const double u = rng.NextDouble();
    size_t pick = 0;
    while (u > cdf[pick]) {
      ++pick;
    }
    column.push_back(values[pick]);
  }

  // --- Attack 1: plain DET ------------------------------------------------------
  const DetToken det(AesKey::FromSeed(1));
  std::map<uint64_t, int> det_hist;
  for (const auto& v : column) {
    ++det_hist[det.Tag(v)];
  }
  // Adversary: sort ciphertexts by frequency, match against the public
  // distribution sorted by frequency.
  std::vector<std::pair<int, uint64_t>> by_freq;
  for (const auto& [token, count] : det_hist) {
    by_freq.push_back({count, token});
  }
  std::sort(by_freq.rbegin(), by_freq.rend());

  std::printf("--- frequency attack on plain DET ---\n");
  std::printf("%-10s %-10s %-22s\n", "rank", "count", "adversary's guess");
  int correct = 0;
  for (size_t i = 0; i < by_freq.size(); ++i) {
    const bool hit = det.Tag(values[i]) == by_freq[i].second;
    correct += hit;
    std::printf("%-10zu %-10d %-12s %s\n", i + 1, by_freq[i].first, values[i].c_str(),
                hit ? "CORRECT" : "wrong");
  }
  std::printf("adversary decodes %d/%zu values from ciphertext frequencies alone\n\n",
              correct, values.size());

  // --- Attack 2: enhanced SPLASHE ------------------------------------------------
  auto table = std::make_shared<seabed::Table>("demo");
  auto country_col = std::make_shared<seabed::StringColumn>();
  auto one_col = std::make_shared<seabed::Int64Column>();
  for (const auto& v : column) {
    country_col->Append(v);
    one_col->Append(1);
  }
  table->AddColumn("country", country_col);
  table->AddColumn("ones", one_col);

  seabed::PlainSchema schema;
  schema.table_name = "demo";
  ValueDistribution dist;
  dist.values = values;
  dist.frequencies = freq;
  schema.columns.push_back({"country", ColumnType::kString, true, dist});
  schema.columns.push_back({"ones", ColumnType::kInt64, true, std::nullopt});

  Query sample;
  sample.table = "demo";
  sample.Sum("ones").Where("country", CmpOp::kEq, std::string("india"));

  seabed::SessionOptions options;
  options.backend = seabed::BackendKind::kSeabed;
  options.cluster.num_workers = 4;
  options.planner.expected_rows = kRows;
  options.key_seed = 2;
  seabed::Session session(options);
  session.Attach(table, schema, {sample});

  const seabed::SplasheLayout* layout = session.plan("demo").FindSplashe("country");
  if (layout == nullptr) {
    std::printf("planner did not splay the dimension — unexpected\n");
    return 1;
  }
  const seabed::EncryptedDatabase& db = session.encrypted_database("demo");

  std::printf("--- the same attack on enhanced SPLASHE ---\n");
  std::printf("splayed (frequent) values: ");
  for (const auto& v : layout->splayed_values) {
    std::printf("%s ", v.c_str());
  }
  std::printf("\nwhat the adversary sees of the remaining DET column:\n");
  const auto* enc_det = static_cast<const seabed::DetColumn*>(
      db.table->GetColumn(layout->DetColumn()).get());
  std::map<uint64_t, int> splashe_hist;
  for (size_t row = 0; row < enc_det->RowCount(); ++row) {
    ++splashe_hist[enc_det->Get(row)];
  }
  for (const auto& [token, count] : splashe_hist) {
    std::printf("  token %016llx : %d occurrences\n",
                static_cast<unsigned long long>(token), count);
  }
  std::printf("every token occurs (near-)equally often -> frequency matching "
              "yields no information.\n\n");

  // And the data is still queryable:
  for (const auto& v : values) {
    Query q;
    q.table = "demo";
    q.Sum("ones", "count");
    q.Where("country", CmpOp::kEq, v);
    const seabed::ResultSet r = session.Execute(q);
    std::printf("COUNT(country = %-7s) = %s\n", v.c_str(),
                seabed::ValueToString(r.rows[0][0]).c_str());
  }
  return 0;
}
